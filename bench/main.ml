(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe            -- everything (fig3 fig6 fig7 fig8
                                            backends verify)
     dune exec bench/main.exe -- fig8    -- one artifact
     dune exec bench/main.exe -- all --quick   -- shortened runs
     dune exec bench/main.exe -- fig6 --metrics-out m.json
                                         -- also dump the metrics registry

   Each section prints the measured data next to the shape the paper
   reports; EXPERIMENTS.md records a full comparison. *)

let quick = ref false
let metrics_out = ref None
let json_out = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* The machine-readable mirror of the printed tables: each section records
   its headline numbers under its own key; --json-out writes them as one
   document ("planp-bench/1").  Only the sections that actually ran
   appear. *)
let summary : (string * Obs.Json.t) list ref = ref []
let record key json = summary := !summary @ [ (key, json) ]

(* ------------------------------------------------------------------ *)
(* The five bundled ASPs -- the same set as the paper's Fig. 3.        *)
(* ------------------------------------------------------------------ *)

let bundled_asps () =
  [
    ("audio broadcasting (router)", Asp.Audio_asp.router_program ~iface:1 (), 68);
    ("audio broadcasting (client)", Asp.Audio_asp.client_program (), 28);
    ( "extensible web server",
      Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
        ~servers:("10.3.0.1", "10.3.0.2") (),
      91 );
    ("MPEG (monitor)", Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" (), 161);
    ("MPEG (client)", Asp.Mpeg_asp.capture_program (), 53);
  ]

let checked_of source =
  Planp_runtime.Prims.install ();
  match Extnet.check_source source with
  | Ok checked -> checked
  | Error message -> failwith message

let globals_of checked =
  let world, _, _ = Planp_runtime.World.dummy () in
  List.fold_left
    (fun globals decl ->
      match decl with
      | Planp.Ast.Dval ({ Planp.Ast.bind_name; bind_expr; _ }, _) ->
          globals
          @ [ (bind_name,
               Planp_runtime.Interp.eval_const ~world ~globals bind_expr) ]
      | _ -> globals)
    [] checked.Planp.Typecheck.program

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

(* Runs a grouped set of Bechamel tests and returns (name, ns-per-run). *)
let bechamel_ns_per_run tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"bench" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name est acc ->
      match Analyze.OLS.estimates est with
      | Some (ns :: _) -> (name, ns) :: acc
      | Some [] | None -> acc)
    results []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Fig. 3 -- code generation time                                      *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Fig. 3 -- code generation time per ASP";
  Printf.printf
    "%-30s %7s %11s | %12s %12s %12s\n" "program" "lines" "paper-lines"
    "jit (ms)" "bytecode(ms)" "interp (ms)";
  let open Bechamel in
  let rows = ref [] in
  List.iter
    (fun (name, source, paper_lines) ->
      let checked = checked_of source in
      let globals = globals_of checked in
      let tests =
        List.map
          (fun backend ->
            Test.make
              ~name:backend.Planp_runtime.Backend.backend_name
              (Staged.stage (fun () ->
                   ignore
                     (backend.Planp_runtime.Backend.compile checked ~globals))))
          (Planp_jit.Backends.all ())
      in
      let results = bechamel_ns_per_run tests in
      let ms backend_name =
        match
          List.find_opt
            (fun (n, _) ->
              n = "bench/" ^ backend_name || n = backend_name)
            results
        with
        | Some (_, ns) -> ns /. 1e6
        | None -> nan
      in
      Printf.printf "%-30s %7d %11d | %12.4f %12.4f %12.4f\n" name
        (Planp.Ast.line_count source)
        paper_lines (ms "jit") (ms "bytecode") (ms "interp");
      rows :=
        !rows
        @ [
            Obs.Json.Obj
              [
                ("program", Obs.Json.String name);
                ("lines", Obs.Json.Int (Planp.Ast.line_count source));
                ("paper_lines", Obs.Json.Int paper_lines);
                ("jit_ms", Obs.Json.Float (ms "jit"));
                ("bytecode_ms", Obs.Json.Float (ms "bytecode"));
                ("interp_ms", Obs.Json.Float (ms "interp"));
              ];
          ])
    (bundled_asps ());
  record "fig3" (Obs.Json.Obj [ ("codegen", Obs.Json.List !rows) ]);
  Printf.printf
    "\npaper (Tempo-generated JIT on a 170 MHz Ultra-1): 6.1 .. 33.9 ms,\n\
     growing with program size; the shape to check is codegen time scaling\n\
     with lines while staying in the low-millisecond range.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 6 -- audio bandwidth adaptation timeline                       *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig. 6 -- audio traffic under stepped load (with adaptation)";
  let config =
    if !quick then Asp.Audio_experiment.quick_config ()
    else Asp.Audio_experiment.fig6_config ()
  in
  let result = Asp.Audio_experiment.run config in
  let steps = config.Asp.Audio_experiment.schedule in
  Printf.printf "load schedule: %s (kB/s of cross traffic)\n\n"
    (String.concat ", "
       (List.map (fun (t, r) -> Printf.sprintf "t=%.0fs->%.0f" t r) steps));
  Printf.printf "%8s %10s  %s\n" "time (s)" "kB/s" "bandwidth";
  List.iter
    (fun (t, kbps) ->
      Printf.printf "%8.1f %10.1f  %s\n" t kbps
        (String.make (int_of_float (kbps /. 4.0)) '#'))
    result.Asp.Audio_experiment.series;
  let s16, m16, m8 = result.Asp.Audio_experiment.wire_quality_counts in
  Printf.printf
    "\nwire qualities: 16-bit stereo %d, 16-bit mono %d, 8-bit mono %d frames\n"
    s16 m16 m8;
  Printf.printf "frames sent %d, received %d, drops %d\n"
    result.Asp.Audio_experiment.frames_sent
    result.Asp.Audio_experiment.frames_received
    result.Asp.Audio_experiment.segment_drops;
  record "fig6"
    (Obs.Json.Obj
       [
         ("frames_sent", Obs.Json.Int result.Asp.Audio_experiment.frames_sent);
         ( "frames_received",
           Obs.Json.Int result.Asp.Audio_experiment.frames_received );
         ( "segment_drops",
           Obs.Json.Int result.Asp.Audio_experiment.segment_drops );
         ( "silent_periods",
           Obs.Json.Int result.Asp.Audio_experiment.silent_periods );
         ("wire_16bit_stereo_frames", Obs.Json.Int s16);
         ("wire_16bit_mono_frames", Obs.Json.Int m16);
         ("wire_8bit_mono_frames", Obs.Json.Int m8);
         ( "series",
           Obs.Json.List
             (List.map
                (fun (t, kbps) ->
                  Obs.Json.Obj
                    [ ("t_s", Obs.Json.Float t); ("kbps", Obs.Json.Float kbps) ])
                result.Asp.Audio_experiment.series) );
       ]);
  Printf.printf
    "\npaper: 176 kB/s (16-bit stereo) with no load; heavy load at 100 s ->\n\
     immediate drop to 44 kB/s (8-bit mono); medium load at 220 s ->\n\
     oscillates 44..88; light load at 340 s -> 88 kB/s (16-bit mono).\n"

(* ------------------------------------------------------------------ *)
(* Fig. 7 -- silent periods with and without adaptation                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig. 7 -- silent periods during playback";
  let duration = if !quick then 20.0 else 60.0 in
  let loads =
    [ ("no load", 0.0); ("light (900 kB/s)", 900.0);
      ("medium (1050 kB/s)", 1050.0); ("heavy (1150 kB/s)", 1150.0) ]
  in
  Printf.printf "%-20s | %-28s | %-28s\n" "cross load"
    "with adaptation" "without adaptation";
  Printf.printf "%-20s | %-13s %-14s | %-13s %-14s\n" "" "silent periods"
    "frames lost" "silent periods" "frames lost";
  let load_rows = ref [] in
  List.iter
    (fun (label, load) ->
      let run adapt =
        Asp.Audio_experiment.run
          {
            (Asp.Audio_experiment.quick_config ~adapt ()) with
            Asp.Audio_experiment.duration;
            schedule = [ (0.0, load) ];
          }
      in
      let with_adaptation = run true in
      let without = run false in
      let lost (r : Asp.Audio_experiment.result) =
        r.Asp.Audio_experiment.frames_sent
        - r.Asp.Audio_experiment.frames_received
      in
      Printf.printf "%-20s | %13d %14d | %13d %14d\n" label
        with_adaptation.Asp.Audio_experiment.silent_periods
        (lost with_adaptation)
        without.Asp.Audio_experiment.silent_periods (lost without);
      load_rows :=
        !load_rows
        @ [
            Obs.Json.Obj
              [
                ("load", Obs.Json.String label);
                ("load_kbps", Obs.Json.Float load);
                ( "adapted_silent_periods",
                  Obs.Json.Int with_adaptation.Asp.Audio_experiment.silent_periods
                );
                ("adapted_frames_lost", Obs.Json.Int (lost with_adaptation));
                ( "unadapted_silent_periods",
                  Obs.Json.Int without.Asp.Audio_experiment.silent_periods );
                ("unadapted_frames_lost", Obs.Json.Int (lost without));
              ];
          ])
    loads;
  Printf.printf
    "\npaper: adaptation reduces the number of gaps in audio playback;\n\
     without adaptation gaps grow with the load.\n";
  (* Policy ablation -- the paper's point that "strategies can be quickly
     developed and experimented with" (the router ASP was written in one
     day): three threshold policies under the heavy load. *)
  Printf.printf "\npolicy ablation (heavy load, %gs):\n" duration;
  Printf.printf "  %-34s %8s %8s %14s\n" "policy (mono16/mono8 thresholds)"
    "periods" "lost" "mean kB/s";
  let policy_rows = ref [] in
  List.iter
    (fun (label, policy) ->
      let result =
        Asp.Audio_experiment.run
          {
            (Asp.Audio_experiment.quick_config ()) with
            Asp.Audio_experiment.duration;
            schedule = [ (0.0, 1150.0) ];
            policy;
          }
      in
      let mean_rate =
        match result.Asp.Audio_experiment.series with
        | [] -> 0.0
        | series ->
            List.fold_left (fun acc (_, r) -> acc +. r) 0.0 series
            /. float_of_int (List.length series)
      in
      Printf.printf "  %-34s %8d %8d %14.1f\n" label
        result.Asp.Audio_experiment.silent_periods
        (result.Asp.Audio_experiment.frames_sent
        - result.Asp.Audio_experiment.frames_received)
        mean_rate;
      policy_rows :=
        !policy_rows
        @ [
            Obs.Json.Obj
              [
                ("policy", Obs.Json.String label);
                ( "silent_periods",
                  Obs.Json.Int result.Asp.Audio_experiment.silent_periods );
                ( "frames_lost",
                  Obs.Json.Int
                    (result.Asp.Audio_experiment.frames_sent
                    - result.Asp.Audio_experiment.frames_received) );
                ("mean_kbps", Obs.Json.Float mean_rate);
              ];
          ])
    [
      ("conservative (800/1000)",
        { Asp.Audio_asp.mono16_above = 800; mono8_above = 1000 });
      ("default (950/1150)", Asp.Audio_asp.default_policy);
      ("optimistic (1150/1245)",
        { Asp.Audio_asp.mono16_above = 1150; mono8_above = 1245 });
      ("complacent (1250/1400)",
        { Asp.Audio_asp.mono16_above = 1250; mono8_above = 1400 });
    ];
  record "fig7"
    (Obs.Json.Obj
       [
         ("loads", Obs.Json.List !load_rows);
         ("policy_ablation", Obs.Json.List !policy_rows);
       ])

(* ------------------------------------------------------------------ *)
(* Fig. 8 -- HTTP cluster throughput                                   *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Fig. 8 -- HTTP server performance (replies/s vs offered load)";
  let config =
    {
      Asp.Http_experiment.default_config with
      duration = (if !quick then 12.0 else 25.0);
      warmup = 5.0;
      client_count = 16;
    }
  in
  let workers_list = if !quick then [ 16; 48 ] else [ 8; 16; 24; 32; 48; 64 ] in
  let setups =
    [
      ("a", Asp.Http_experiment.Single);
      ("b", Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit);
      ("c", Asp.Http_experiment.Native_gateway);
      ("d", Asp.Http_experiment.Disjoint);
    ]
  in
  Printf.printf "%-36s %s\n" "configuration"
    (String.concat ""
       (List.map
          (fun w -> Printf.sprintf "%9s" (string_of_int w ^ "w"))
          workers_list));
  let peaks =
    List.map
      (fun (label, setup) ->
        let points = Asp.Http_experiment.run_sweep config setup ~workers_list in
        let last = List.nth points (List.length points - 1) in
        Printf.printf "%-36s %s   p95=%.0fms\n"
          (Printf.sprintf "(%s) %s" label (Asp.Http_experiment.setup_name setup))
          (String.concat ""
             (List.map
                (fun p ->
                  Printf.sprintf "%9.0f" p.Asp.Http_experiment.replies_per_s)
                points))
          last.Asp.Http_experiment.p95_response_ms;
        let peak =
          List.fold_left
            (fun acc p -> Float.max acc p.Asp.Http_experiment.replies_per_s)
            0.0 points
        in
        (label, peak))
      setups
  in
  let peak label = List.assoc label peaks in
  Printf.printf "\nsummary (saturation throughputs):\n";
  Printf.printf "  ASP gateway / single server      = %.2fx   (paper: 1.75x)\n"
    (peak "b" /. peak "a");
  Printf.printf "  ASP gateway / built-in gateway   = %.2fx   (paper: ~1.0)\n"
    (peak "b" /. peak "c");
  Printf.printf "  ASP gateway / disjoint clients   = %.0f%%    (paper: 85%%)\n"
    (100.0 *. peak "b" /. peak "d");
  (* Ablation: what an interpreted (non-JIT) gateway would do. *)
  let interp_point =
    Asp.Http_experiment.run_point config
      (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.interp)
      ~workers:(List.nth workers_list (List.length workers_list - 1))
  in
  Printf.printf
    "  ablation: interpreted ASP gateway saturates at %.0f replies/s -- the\n\
     JIT is what makes the ASP viable (paper 2.2).\n"
    interp_point.Asp.Http_experiment.replies_per_s;
  record "fig8"
    (Obs.Json.Obj
       [
         ( "peak_replies_per_s",
           Obs.Json.Obj
             (List.map
                (fun (label, peak) -> (label, Obs.Json.Float peak))
                peaks) );
         ("gateway_vs_single", Obs.Json.Float (peak "b" /. peak "a"));
         ("gateway_vs_native", Obs.Json.Float (peak "b" /. peak "c"));
         ("gateway_vs_disjoint", Obs.Json.Float (peak "b" /. peak "d"));
         ( "interp_ablation_replies_per_s",
           Obs.Json.Float interp_point.Asp.Http_experiment.replies_per_s );
       ])

(* ------------------------------------------------------------------ *)
(* 3.3 -- point-to-point to multipoint MPEG                            *)
(* ------------------------------------------------------------------ *)

let mpeg () =
  section "3.3 -- MPEG: point-to-point server shared by one segment";
  let config = Asp.Mpeg_experiment.default_config () in
  let config =
    if !quick then
      { config with Asp.Mpeg_experiment.movie_frames = 120; duration = 12.0;
        client_starts = [ 0.5; 2.0; 4.0 ] }
    else config
  in
  let show label (r : Asp.Mpeg_experiment.result) =
    Printf.printf
      "  %-14s connections=%d  server frames=%4d  client frames=[%s]  segment video=%d KB\n"
      label r.Asp.Mpeg_experiment.server_streams
      r.Asp.Mpeg_experiment.server_frames_sent
      (String.concat ";"
         (List.map string_of_int r.Asp.Mpeg_experiment.client_frames))
      (r.Asp.Mpeg_experiment.segment_video_bytes / 1024)
  in
  let json_of (r : Asp.Mpeg_experiment.result) =
    Obs.Json.Obj
      [
        ("connections", Obs.Json.Int r.Asp.Mpeg_experiment.server_streams);
        ( "server_frames",
          Obs.Json.Int r.Asp.Mpeg_experiment.server_frames_sent );
        ( "client_frames",
          Obs.Json.List
            (List.map
               (fun n -> Obs.Json.Int n)
               r.Asp.Mpeg_experiment.client_frames) );
        ( "segment_video_bytes",
          Obs.Json.Int r.Asp.Mpeg_experiment.segment_video_bytes );
      ]
  in
  let with_asps = Asp.Mpeg_experiment.run config in
  let baseline =
    Asp.Mpeg_experiment.run { config with Asp.Mpeg_experiment.with_asps = false }
  in
  show "with ASPs" with_asps;
  show "baseline" baseline;
  record "mpeg"
    (Obs.Json.Obj
       [ ("with_asps", json_of with_asps); ("baseline", json_of baseline) ]);
  Printf.printf
    "\npaper 3.3: with the monitor and capture ASPs, one point-to-point\n\
     connection serves every client on the segment; the server is not\n\
     modified. Later clients join the live stream (fewer frames).\n"

(* ------------------------------------------------------------------ *)
(* Backends -- per-packet execution cost (2.4 claims)                  *)
(* ------------------------------------------------------------------ *)

let backends () =
  section "Backends -- per-packet execution time of the gateway channel";
  let source =
    Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
      ~servers:("10.3.0.1", "10.3.0.2") ()
  in
  let checked = checked_of source in
  let globals = globals_of checked in
  let packet =
    Netsim.Packet.tcp
      ~src:(Netsim.Addr.of_string "192.168.0.7")
      ~dst:(Netsim.Addr.of_string "10.3.0.100")
      ~src_port:4242 ~dst_port:80
      (Netsim.Payload.of_string "GET /index.html HTTP/1.0")
  in
  let open Bechamel in
  (* A no-op world: the dummy world records emissions, which would both
     accumulate memory over millions of runs and bill the recording to the
     engine under test. *)
  let null_world =
    let dummy, _, _ = Planp_runtime.World.dummy () in
    { dummy with
      Planp_runtime.World.emit = (fun _ ~chan:_ _ -> ());
      print = (fun _ -> ()) }
  in
  let backend_test backend =
    let compiled = backend.Planp_runtime.Backend.compile checked ~globals in
    let chan, exec = List.hd compiled in
    let pkt =
      Option.get (Planp_runtime.Pkt_codec.decode chan.Planp.Ast.pkt_type packet)
    in
    let world = null_world in
    let table = Planp_runtime.Value.Vtable (Hashtbl.create 64) in
    Test.make
      ~name:backend.Planp_runtime.Backend.backend_name
      (Staged.stage (fun () ->
           ignore (exec world ~ps:(Planp_runtime.Value.Vint 0) ~ss:table ~pkt)))
  in
  (* The "built-in C" reference: the same logic as a native OCaml closure. *)
  let native_test =
    let connections = Hashtbl.create 64 in
    let count = ref 0 in
    let vip = Netsim.Addr.of_string "10.3.0.100" in
    let server0 = Netsim.Addr.of_string "10.3.0.1" in
    let server1 = Netsim.Addr.of_string "10.3.0.2" in
    Test.make ~name:"native"
      (Staged.stage (fun () ->
           match packet.Netsim.Packet.l4 with
           | Netsim.Packet.Tcp tcp
             when Netsim.Addr.equal packet.Netsim.Packet.dst vip
                  && tcp.Netsim.Packet.tcp_dst = 80 ->
               let conn =
                 (packet.Netsim.Packet.src, tcp.Netsim.Packet.tcp_src)
               in
               let chosen =
                 match Hashtbl.find_opt connections conn with
                 | Some c -> c
                 | None ->
                     let c = !count mod 2 in
                     Hashtbl.replace connections conn c;
                     c
               in
               incr count;
               let target = if chosen = 0 then server0 else server1 in
               ignore (Netsim.Packet.with_dst packet target)
           | _ -> ()))
  in
  let tests =
    native_test
    :: List.map backend_test
         (Planp_jit.Backends.all () @ [ Planp_jit.Backends.jit_nofold ])
  in
  let results = bechamel_ns_per_run tests in
  let ns name =
    match
      List.find_opt (fun (n, _) -> n = "bench/" ^ name || n = name) results
    with
    | Some (_, ns) -> ns
    | None -> nan
  in
  Printf.printf "%-12s %12s %14s\n" "engine" "ns/packet" "vs native";
  List.iter
    (fun name ->
      Printf.printf "%-12s %12.1f %13.2fx\n" name (ns name)
        (ns name /. ns "native"))
    [ "native"; "jit"; "jit-nofold"; "bytecode"; "interp" ];
  record "backends"
    (Obs.Json.Obj
       (List.map
          (fun name ->
            ( name,
              Obs.Json.Obj
                [
                  ("ns_per_packet", Obs.Json.Float (ns name));
                  ("vs_native", Obs.Json.Float (ns name /. ns "native"));
                ] ))
          [ "native"; "jit"; "jit-nofold"; "bytecode"; "interp" ]));
  Printf.printf
    "\npaper 2.4: the JIT-compiled ASP matches built-in C and is about\n\
     2x faster than Java bytecode (Harissa); the interpreter is the\n\
     portable fallback. The jit row should sit near native, bytecode\n\
     a small multiple, interp an order of magnitude.\n"

(* ------------------------------------------------------------------ *)
(* Verifier -- analysis cost and verdicts (2.1)                        *)
(* ------------------------------------------------------------------ *)

let verify () =
  section "Verifier -- safety analyses over the bundled ASPs";
  Printf.printf "%-30s %-8s %8s %8s %10s\n" "program" "verdict" "states"
    "transit." "fix-iters";
  let verdict_rows = ref [] in
  List.iter
    (fun (name, source, _) ->
      let program = Planp.Parser.parse source in
      let report = Planp_analysis.Verifier.verify program in
      Printf.printf "%-30s %-8s %8d %8d %10d\n" name
        (if Planp_analysis.Verifier.passes report then "PROVED" else "REJECTED")
        report.Planp_analysis.Verifier.global_termination
          .Planp_analysis.Global_termination.states_explored
        report.Planp_analysis.Verifier.global_termination
          .Planp_analysis.Global_termination.transitions
        report.Planp_analysis.Verifier.duplication
          .Planp_analysis.Duplication.iterations;
      verdict_rows :=
        !verdict_rows
        @ [
            Obs.Json.Obj
              [
                ("program", Obs.Json.String name);
                ( "proved",
                  Obs.Json.Bool (Planp_analysis.Verifier.passes report) );
                ( "states",
                  Obs.Json.Int
                    report.Planp_analysis.Verifier.global_termination
                      .Planp_analysis.Global_termination.states_explored );
                ( "transitions",
                  Obs.Json.Int
                    report.Planp_analysis.Verifier.global_termination
                      .Planp_analysis.Global_termination.transitions );
              ];
          ])
    (bundled_asps ());
  record "verify" (Obs.Json.Obj [ ("bundled", Obs.Json.List !verdict_rows) ]);
  (* Counterexamples: programs the conservative analyses must reject. *)
  let reject name source =
    let report = Planp_analysis.Verifier.verify (Planp.Parser.parse source) in
    Printf.printf "%-30s %-8s (%s)\n" name
      (if Planp_analysis.Verifier.passes report then "PROVED?!" else "REJECTED")
      (Option.value ~default:"" (Planp_analysis.Verifier.first_failure report))
  in
  reject "flooding multicast"
    "channel flood(ps : unit, ss : unit, p : ip*blob) is (OnNeighbor(flood, p); (ps, ss))";
  reject "destination ping-pong"
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
     if ps mod 2 = 0 then (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps+1, ss))\n\
     else (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps+1, ss))";
  reject "packet dropper"
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
     if tcpDst(#2 p) = 80 then (OnRemote(network, p); (ps, ss)) else (ps, ss)";
  (* Scaling: synthetic chains of c channels, each rewriting among d
     literal destinations, to exhibit the r*d-ish growth of the explored
     state space. *)
  Printf.printf "\nanalysis scaling on synthetic programs (c channels, d destinations):\n";
  Printf.printf "  %4s %4s %10s %12s %12s\n" "c" "d" "states" "transitions"
    "time (ms)";
  let synthetic ~channels ~dests =
    let buffer = Buffer.create 1024 in
    for i = 0 to channels - 1 do
      let target = if i = channels - 1 then "deliver(p); " else "" in
      let next = Printf.sprintf "h%d" (i + 1) in
      Buffer.add_string buffer
        (Printf.sprintf "channel h%d(ps : int, ss : int, p : ip*udp*int) is\n" i);
      if i = channels - 1 then
        Buffer.add_string buffer (Printf.sprintf "  (%s(ps, ss))\n" target)
      else begin
        (* pick among d literal destinations *)
        Buffer.add_string buffer "  (";
        for d = 0 to dests - 1 do
          if d < dests - 1 then
            Buffer.add_string buffer
              (Printf.sprintf
                 "if ps mod %d = %d then OnRemote(%s, (ipDestSet(#1 p, 10.9.%d.%d), #2 p, #3 p)) else "
                 dests d next (i mod 250) d)
          else
            Buffer.add_string buffer
              (Printf.sprintf
                 "OnRemote(%s, (ipDestSet(#1 p, 10.9.%d.%d), #2 p, #3 p))"
                 next (i mod 250) d)
        done;
        Buffer.add_string buffer "; (ps + 1, ss))\n"
      end
    done;
    Buffer.contents buffer
  in
  List.iter
    (fun (channels, dests) ->
      let program = Planp.Parser.parse (synthetic ~channels ~dests) in
      let started = Unix.gettimeofday () in
      let report = Planp_analysis.Global_termination.analyze program in
      let elapsed = (Unix.gettimeofday () -. started) *. 1000.0 in
      Printf.printf "  %4d %4d %10d %12d %12.3f\n" channels dests
        report.Planp_analysis.Global_termination.states_explored
        report.Planp_analysis.Global_termination.transitions elapsed)
    [ (2, 2); (4, 2); (8, 2); (8, 4); (16, 4); (16, 8); (32, 8) ];
  Printf.printf
    "\npaper 2.1: the state space is of the order r*d*2^d (small), the\n\
     duplication fix-point converges in at most 2^c iterations; legitimate\n\
     but unprovable protocols (multicast) need the authenticated path.\n"

(* ------------------------------------------------------------------ *)
(* Extensions -- the paper's 5 future work, implemented                *)
(* ------------------------------------------------------------------ *)

let ext () =
  section "Extensions -- fault tolerance and image distillation (paper 5)";
  Printf.printf "-- fault-tolerant HTTP cluster (server0 crashes mid-run) --
";
  let duration = if !quick then 16.0 else 30.0 in
  let kill_at = if !quick then 6.0 else 10.0 in
  let ft_config failover =
    { (Asp.Http_ft.default_config ~failover ()) with
      Asp.Http_ft.duration; kill_at }
  in
  let show label (r : Asp.Http_ft.result) =
    Printf.printf
      "  %-18s healthy %7.1f replies/s | after crash %7.1f replies/s | retries %d
"
      label r.Asp.Http_ft.before_kill_rate r.Asp.Http_ft.after_kill_rate
      r.Asp.Http_ft.stalled_retries
  in
  let json_of_ft (r : Asp.Http_ft.result) =
    Obs.Json.Obj
      [
        ("healthy_replies_per_s", Obs.Json.Float r.Asp.Http_ft.before_kill_rate);
        ( "after_crash_replies_per_s",
          Obs.Json.Float r.Asp.Http_ft.after_kill_rate );
        ("stalled_retries", Obs.Json.Int r.Asp.Http_ft.stalled_retries);
      ]
  in
  let failover = Asp.Http_ft.run (ft_config true) in
  let plain = Asp.Http_ft.run (ft_config false) in
  show "failover gateway" failover;
  show "plain gateway" plain;
  record "ext"
    (Obs.Json.Obj
       [
         ("failover_gateway", json_of_ft failover);
         ("plain_gateway", json_of_ft plain);
       ]);
  Printf.printf
    "  (the failover ASP reroutes new connections to the survivor through
    \   its health channel; the plain Fig. 2 gateway keeps half of them
    \   pointed at the dead machine)

";
  Printf.printf "-- load-balancing strategies (48 client processes) --\n";
  let strat_config =
    { Asp.Http_experiment.default_config with
      duration = (if !quick then 10.0 else 20.0); warmup = 4.0;
      client_count = 16 }
  in
  List.iter
    (fun strategy ->
      let point =
        Asp.Http_experiment.run_point
          { strat_config with Asp.Http_experiment.strategy }
          (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit)
          ~workers:48
      in
      let s0, s1 = point.Asp.Http_experiment.server_loads in
      Printf.printf "  %-18s %7.1f replies/s  split=(%d,%d)\n"
        (Asp.Http_asp.strategy_name strategy)
        point.Asp.Http_experiment.replies_per_s s0 s1)
    [ Asp.Http_asp.Modulo; Asp.Http_asp.Source_hash; Asp.Http_asp.Weighted (3, 1) ];
  Printf.printf
    "  (source-hash pins each client to one server -- affinity without table\n   growth; balance then depends on the client population. weighted suits\n   heterogeneous clusters.)\n\n";
  Printf.printf "-- image distillation over a 128 kb/s link --
";
  let count = if !quick then 8 else 20 in
  let show label (r : Asp.Image_asp.result) =
    Printf.printf
      "  %-18s %6.1f ms/image %7.0f bytes/image  fidelity RMS %5.1f/255
"
      label
      (r.Asp.Image_asp.latency_s *. 1000.0)
      r.Asp.Image_asp.bytes_per_image r.Asp.Image_asp.fidelity_rms
  in
  show "distilling router" (Asp.Image_asp.run_experiment ~count ~distill:true ());
  show "plain router" (Asp.Image_asp.run_experiment ~count ~distill:false ());
  Printf.printf
    "  (one distillation level halves resolution and depth; the ASP picks
    \   the level from linkCapacity, so faster links distill less)
"

(* ------------------------------------------------------------------ *)
(* perf -- the packet fast path: packets/sec and allocs/packet         *)
(* ------------------------------------------------------------------ *)

let smoke = ref false

(* --full: run the scale meshes at ~10^7 events instead of the default
   1.5M.  The committed baseline stays pinned to the gated words/event
   numbers, which are size-independent, so --full changes how long the
   measurement runs, never what the gate compares. *)
let full = ref false
let perf_out = ref None
let perf_check = ref None

(* Sections of the committed perf baseline ("planp-bench-perf/1"): [perf]
   contributes "asps", [scale] contributes "scale".  The document is
   written once at exit so `perf scale --perf-out FILE` produces a single
   combined baseline. *)
let baseline_sections : (string * Obs.Json.t) list ref = ref []
let baseline_add key json = baseline_sections := !baseline_sections @ [ (key, json) ]

(* The three deployed ASPs, each with one representative packet that takes
   the channel's main branch.  The workload is the per-packet execution
   path alone: decode once outside the loop, then run the compiled channel
   over the same decoded value while threading (ps, ss) like the runtime
   does. *)
let perf_workloads () =
  let audio_packet =
    Netsim.Packet.udp
      ~src:(Netsim.Addr.of_string "10.1.0.7")
      ~dst:(Netsim.Addr.of_string "239.1.0.1")
      ~src_port:Asp.Audio_app.audio_port ~dst_port:Asp.Audio_app.audio_port
      (Planp_runtime.Audio_frame.encode
         (Planp_runtime.Audio_frame.synth ~seq:0 ~frames:20 ~phase:0))
  in
  let http_packet =
    Netsim.Packet.tcp
      ~src:(Netsim.Addr.of_string "192.168.0.7")
      ~dst:(Netsim.Addr.of_string "10.3.0.100")
      ~src_port:4242 ~dst_port:80
      (Netsim.Payload.of_string "GET /index.html HTTP/1.0")
  in
  let mpeg_packet =
    (* A PLAY request: 'P', file id, video port -- the monitor's first
       network channel records it in the connection table. *)
    let w = Netsim.Payload.Writer.create () in
    Netsim.Payload.Writer.u8 w (Char.code 'P');
    Netsim.Payload.Writer.u32 w 3;
    Netsim.Payload.Writer.u32 w 7101;
    Netsim.Packet.tcp
      ~src:(Netsim.Addr.of_string "10.6.0.9")
      ~dst:(Netsim.Addr.of_string "10.6.0.1")
      ~src_port:4411 ~dst_port:554
      (Netsim.Payload.Writer.finish w)
  in
  [
    ("audio_router", Asp.Audio_asp.router_program ~iface:1 (), audio_packet);
    ( "http_gateway",
      Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
        ~servers:("10.3.0.1", "10.3.0.2") (),
      http_packet );
    ("mpeg_monitor", Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" (), mpeg_packet);
  ]

type perf_point = { pkts_per_s : float; words_per_pkt : float }

(* Initial protocol and channel state, exactly as Runtime.install computes
   them. *)
let perf_states checked globals chan =
  let world, _, _ = Planp_runtime.World.dummy () in
  let proto =
    match checked.Planp.Typecheck.proto_init with
    | Some init -> Planp_runtime.Interp.eval_const ~world ~globals init
    | None -> Planp_runtime.Value.default_of checked.Planp.Typecheck.proto_type
  in
  let chan_state =
    match chan.Planp.Ast.initstate with
    | Some init -> Planp_runtime.Interp.eval_const ~world ~globals init
    | None -> Planp_runtime.Value.default_of chan.Planp.Ast.ss_type
  in
  (proto, chan_state)

let perf_measure ~warmup ~alloc_iters ~min_seconds exec world pkt ps0 ss0 =
  let ps = ref ps0 and ss = ref ss0 in
  let batch count =
    for _ = 1 to count do
      let ps', ss' = exec world ~ps:!ps ~ss:!ss ~pkt in
      ps := ps';
      ss := ss'
    done
  in
  batch warmup;
  (* Allocation rate over a fixed, deterministic iteration count: the
     steady-state minor-heap words each packet costs. *)
  let words0 = Gc.minor_words () in
  batch alloc_iters;
  let words_per_pkt = (Gc.minor_words () -. words0) /. float_of_int alloc_iters in
  (* Throughput over however many batches it takes to fill the time
     budget, so fast backends still get a stable wall-clock sample. *)
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < min_seconds do
    batch alloc_iters;
    iters := !iters + alloc_iters
  done;
  let dt = Unix.gettimeofday () -. t0 in
  { pkts_per_s = float_of_int !iters /. dt; words_per_pkt }

let perf_backends () =
  [
    ("interp", Planp_runtime.Interp.backend);
    ("bytecode", Planp_jit.Backends.bytecode);
    ("jit", Planp_jit.Backends.jit);
  ]

let perf_run () =
  let warmup = if !smoke then 200 else 1_000 in
  let alloc_iters = if !smoke then 2_000 else 20_000 in
  let min_seconds = if !smoke then 0.02 else 0.3 in
  let null_world =
    let dummy, _, _ = Planp_runtime.World.dummy () in
    { dummy with
      Planp_runtime.World.emit = (fun _ ~chan:_ _ -> ());
      print = (fun _ -> ()) }
  in
  List.map
    (fun (key, source, packet) ->
      let checked = checked_of source in
      let globals = globals_of checked in
      let rows =
        List.map
          (fun (backend_name, backend) ->
            let compiled = backend.Planp_runtime.Backend.compile checked ~globals in
            (* First channel that decodes this packet -- same choice the
               runtime dispatcher makes for an untagged packet. *)
            let chan, exec, pkt =
              let rec pick = function
                | [] -> failwith (key ^ ": no channel matches the bench packet")
                | (chan, exec) :: rest -> (
                    match
                      Planp_runtime.Pkt_codec.decode chan.Planp.Ast.pkt_type packet
                    with
                    | Some value -> (chan, exec, value)
                    | None -> pick rest)
              in
              pick compiled
            in
            let ps0, ss0 = perf_states checked globals chan in
            ( backend_name,
              perf_measure ~warmup ~alloc_iters ~min_seconds exec null_world pkt
                ps0 ss0 ))
          (perf_backends ())
      in
      (key, rows))
    (perf_workloads ())

let perf_asps_json results =
  Obs.Json.Obj
    (List.map
       (fun (key, rows) ->
         ( key,
           Obs.Json.Obj
             (List.map
                (fun (backend_name, point) ->
                  ( backend_name,
                    Obs.Json.Obj
                      [
                        ("pkts_per_s", Obs.Json.Float point.pkts_per_s);
                        ( "minor_words_per_pkt",
                          Obs.Json.Float point.words_per_pkt );
                      ] ))
                rows) ))
       results)

let perf_json results =
  Obs.Json.Obj
    [
      ("format", Obs.Json.String "planp-bench-perf/1");
      ("smoke", Obs.Json.Bool !smoke);
      ("asps", perf_asps_json results);
    ]

(* The baseline gate.  Two families of checks, chosen to stay meaningful on
   any machine:
     - allocs/packet against the committed baseline (deterministic counts;
       tolerance covers GC accounting jitter, not real regressions), and
     - same-run backend ratios (jit vs interp packets/sec), which divide
       out the host's absolute speed.  *)
let perf_check_against ~baseline_path results =
  let fail = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  (match
     let contents =
       let ic = open_in_bin baseline_path in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     Obs.Json.of_string contents
   with
  | exception Sys_error message -> complain "cannot read baseline: %s" message
  | Error message -> complain "cannot parse baseline %s: %s" baseline_path message
  | Ok baseline -> (
      match Obs.Json.member "asps" baseline with
      | None -> complain "baseline %s has no \"asps\" section" baseline_path
      | Some asps ->
          List.iter
            (fun (key, rows) ->
              match Obs.Json.member key asps with
              | None -> complain "baseline has no entry for %s" key
              | Some entry ->
                  List.iter
                    (fun (backend_name, point) ->
                      match
                        Option.bind
                          (Obs.Json.member backend_name entry)
                          (fun b ->
                            Option.bind
                              (Obs.Json.member "minor_words_per_pkt" b)
                              Obs.Json.number)
                      with
                      | None ->
                          complain "baseline has no words/pkt for %s/%s" key
                            backend_name
                      | Some base_words ->
                          (* +-25%% relative plus a small absolute slack so
                             near-zero baselines don't trip on a word or
                             two of GC noise. *)
                          let ceiling = (base_words *. 1.25) +. 16.0 in
                          if point.words_per_pkt > ceiling then
                            complain
                              "%s/%s allocates %.1f words/pkt (baseline %.1f, ceiling %.1f)"
                              key backend_name point.words_per_pkt base_words
                              ceiling)
                    rows)
            results));
  (* The paper's speedup claim, checked within this run. *)
  (match List.assoc_opt "audio_router" results with
  | None -> complain "no audio_router section in this run"
  | Some rows -> (
      match (List.assoc_opt "jit" rows, List.assoc_opt "interp" rows) with
      | Some jit, Some interp ->
          if jit.pkts_per_s < 2.0 *. interp.pkts_per_s then
            complain
              "audio_router: jit %.0f pkts/s is under 2x interp %.0f pkts/s"
              jit.pkts_per_s interp.pkts_per_s
      | _ -> complain "audio_router run lacks jit or interp rows"));
  match !fail with
  | [] -> Printf.printf "\nperf gate: OK (baseline %s)\n" baseline_path
  | messages ->
      Printf.printf "\nperf gate: FAILED\n";
      List.iter (fun m -> Printf.printf "  - %s\n" m) (List.rev messages);
      exit 1

let perf () =
  section "perf -- packet fast path (packets/sec, minor words/packet)";
  let results = perf_run () in
  Printf.printf "%-14s %-10s %14s %18s\n" "asp" "backend" "pkts/s"
    "minor words/pkt";
  List.iter
    (fun (key, rows) ->
      List.iter
        (fun (backend_name, point) ->
          Printf.printf "%-14s %-10s %14.0f %18.1f\n" key backend_name
            point.pkts_per_s point.words_per_pkt)
        rows)
    results;
  let interp_ratio rows =
    match (List.assoc_opt "jit" rows, List.assoc_opt "interp" rows) with
    | Some jit, Some interp -> jit.pkts_per_s /. interp.pkts_per_s
    | _ -> nan
  in
  List.iter
    (fun (key, rows) ->
      Printf.printf "%-14s jit is %.1fx interp\n" key (interp_ratio rows))
    results;
  record "perf" (perf_json results);
  baseline_add "asps" (perf_asps_json results);
  match !perf_check with
  | None -> ()
  | Some baseline_path -> perf_check_against ~baseline_path results

(* ------------------------------------------------------------------ *)
(* cache -- the flow-keyed decision cache fast path                    *)
(* ------------------------------------------------------------------ *)

type cache_point = {
  cp_hit_rate : float;
  cp_cached_pkts_per_s : float;
  cp_uncached_pkts_per_s : float;
  cp_ratio : float;
}

(* One steady flow per workload, injected through a real [Runtime.t] (so
   the measurement includes dispatch, decode, probe and replay — the
   path production packets take).  [mpeg_filter_steady] is the gated row:
   a B-frame stream against the shedding filter, whose whole decision
   (drop + count) replays from the cache. *)
let cache_workloads () =
  let b_frame =
    (* udpSrc = videoPort, blobLength > 8, blobByte(body, 8) = 2: the
       filter's B-frame branch, every time. *)
    let body = Bytes.make 16 '\000' in
    Bytes.set body 8 '\002';
    Netsim.Packet.udp
      ~src:(Netsim.Addr.of_string "10.6.0.1")
      ~dst:(Netsim.Addr.of_string "10.6.0.9")
      ~src_port:554 ~dst_port:7101
      (Netsim.Payload.of_bytes body)
  in
  let audio_packet =
    (* A *degraded* frame — what the router actually sends a client under
       congestion — so the restoration site's output differs from the
       raw packet and the decision is unambiguous. *)
    Netsim.Packet.udp
      ~src:(Netsim.Addr.of_string "10.1.0.7")
      ~dst:(Netsim.Addr.of_string "239.1.0.1")
      ~src_port:Asp.Audio_app.audio_port ~dst_port:Asp.Audio_app.audio_port
      (Planp_runtime.Audio_frame.encode
         (Planp_runtime.Audio_frame.degrade
            (Planp_runtime.Audio_frame.synth ~seq:0 ~frames:20 ~phase:0)
            Planp_runtime.Audio_frame.Mono8))
  in
  let http_packet =
    Netsim.Packet.tcp
      ~src:(Netsim.Addr.of_string "192.168.0.7")
      ~dst:(Netsim.Addr.of_string "10.3.0.100")
      ~src_port:4242 ~dst_port:80
      (Netsim.Payload.of_string "GET /index.html HTTP/1.0")
  in
  [
    ( "mpeg_filter_steady",
      Asp.Mpeg_asp.filter_program ~video_port:554 ~drop_b:true (),
      b_frame );
    ("audio_client", Asp.Audio_asp.client_program (), audio_packet);
    (* Uncacheable control: the gateway writes its affinity table, so the
       analysis refuses it and the cache must stay out of the way. *)
    ( "http_gateway",
      Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
        ~servers:("10.3.0.1", "10.3.0.2") (),
      http_packet );
  ]

let cache_counter name =
  Option.value ~default:0
    (Obs.Registry.read_counter
       ~labels:[ ("node", "bench-cache"); ("chan", "network") ]
       name)

let cache_run () =
  let warmup = if !smoke then 200 else 1_000 in
  let iters = if !smoke then 2_000 else 20_000 in
  let min_seconds = if !smoke then 0.02 else 0.3 in
  let was_enabled = Planp_runtime.Flowcache.enabled () in
  Fun.protect
    ~finally:(fun () -> Planp_runtime.Flowcache.set_enabled was_enabled)
    (fun () ->
      List.map
        (fun (key, source, packet) ->
          let engine = Netsim.Engine.create () in
          let node =
            Netsim.Node.create engine ~name:"bench-cache"
              ~addr:(Netsim.Addr.of_string "10.9.9.9")
          in
          ignore (Netsim.Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
          Planp_runtime.Flowcache.set_enabled true;
          let rt = Planp_runtime.Runtime.attach node in
          ignore (Planp_runtime.Runtime.install_exn rt ~name:key ~source ());
          let measure () =
            let batch count =
              for _ = 1 to count do
                Planp_runtime.Runtime.inject rt packet
              done
            in
            batch warmup;
            let t0 = Unix.gettimeofday () in
            let total = ref 0 in
            while Unix.gettimeofday () -. t0 < min_seconds do
              batch iters;
              total := !total + iters
            done;
            float_of_int !total /. (Unix.gettimeofday () -. t0)
          in
          let hits0 = cache_counter "runtime.cache.hits" in
          let misses0 = cache_counter "runtime.cache.misses" in
          let cached = measure () in
          let hits = cache_counter "runtime.cache.hits" - hits0 in
          let misses = cache_counter "runtime.cache.misses" - misses0 in
          let served = hits + misses in
          let hit_rate =
            if served = 0 then 0.0
            else float_of_int hits /. float_of_int served
          in
          Planp_runtime.Flowcache.set_enabled false;
          let uncached = measure () in
          ( key,
            {
              cp_hit_rate = hit_rate;
              cp_cached_pkts_per_s = cached;
              cp_uncached_pkts_per_s = uncached;
              cp_ratio = cached /. uncached;
            } ))
        (cache_workloads ()))

let cache_json results =
  Obs.Json.Obj
    (List.map
       (fun (key, p) ->
         ( key,
           Obs.Json.Obj
             [
               ("hit_rate", Obs.Json.Float p.cp_hit_rate);
               ("cached_pkts_per_s", Obs.Json.Float p.cp_cached_pkts_per_s);
               ("uncached_pkts_per_s", Obs.Json.Float p.cp_uncached_pkts_per_s);
               ("ratio", Obs.Json.Float p.cp_ratio);
             ] ))
       results)

(* The cache gate is same-run only (a throughput ratio divides out the
   host), plus a structural check that the committed baseline knows the
   section exists, so BENCH_PERF.json cannot silently predate it. *)
let cache_check_against ~baseline_path results =
  let fail = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  (match
     let ic = open_in_bin baseline_path in
     let n = in_channel_length ic in
     let s = really_input_string ic n in
     close_in ic;
     Obs.Json.of_string s
   with
  | exception Sys_error message -> complain "cannot read baseline: %s" message
  | Error message -> complain "cannot parse baseline %s: %s" baseline_path message
  | Ok baseline ->
      if Obs.Json.member "cache" baseline = None then
        complain "baseline %s has no \"cache\" section (regenerate it)"
          baseline_path);
  (match List.assoc_opt "mpeg_filter_steady" results with
  | None -> complain "no mpeg_filter_steady row in this run"
  | Some p ->
      if p.cp_hit_rate < 0.9 then
        complain "mpeg_filter_steady: hit rate %.3f is under 0.9" p.cp_hit_rate;
      if p.cp_ratio < 1.5 then
        complain
          "mpeg_filter_steady: cached %.0f pkts/s is under 1.5x uncached %.0f"
          p.cp_cached_pkts_per_s p.cp_uncached_pkts_per_s);
  (match List.assoc_opt "http_gateway" results with
  | None -> complain "no http_gateway row in this run"
  | Some p ->
      if p.cp_hit_rate > 0.0 then
        complain "http_gateway: uncacheable channel reports hit rate %.3f"
          p.cp_hit_rate);
  match !fail with
  | [] -> Printf.printf "\ncache gate: OK (baseline %s)\n" baseline_path
  | messages ->
      Printf.printf "\ncache gate: FAILED\n";
      List.iter (fun m -> Printf.printf "  - %s\n" m) (List.rev messages);
      exit 1

let cache () =
  section "cache -- flow-keyed decision cache (replay vs execute)";
  let results = cache_run () in
  Printf.printf "%-20s %9s %14s %14s %7s\n" "workload" "hit rate"
    "cached pkts/s" "uncached" "ratio";
  List.iter
    (fun (key, p) ->
      Printf.printf "%-20s %9.3f %14.0f %14.0f %6.1fx\n" key p.cp_hit_rate
        p.cp_cached_pkts_per_s p.cp_uncached_pkts_per_s p.cp_ratio)
    results;
  record "cache" (cache_json results);
  baseline_add "cache" (cache_json results);
  match !perf_check with
  | None -> ()
  | Some baseline_path -> cache_check_against ~baseline_path results

(* ------------------------------------------------------------------ *)
(* scale -- the event core at topology scale                           *)
(* ------------------------------------------------------------------ *)

type scale_point = {
  sp_events : int;
  sp_events_per_s : float;
  sp_pkts_per_s : float;
  sp_words_per_event : float;
}

(* Advance the simulation to [warmup_stop] (pools, rings and the calendar
   wheel reach steady-state size), then measure events/sec, packets/sec
   and minor words/event over the segment up to [stop]. *)
let scale_measure ~warmup_stop ~stop ~sim ~events ~pkts =
  sim warmup_stop;
  let e0 = events () in
  let p0 = pkts () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  sim stop;
  let dt = Unix.gettimeofday () -. t0 in
  let de = events () - e0 in
  let dp = pkts () - p0 in
  let dw = Gc.minor_words () -. w0 in
  {
    sp_events = de;
    sp_events_per_s = float_of_int de /. dt;
    sp_pkts_per_s = float_of_int dp /. dt;
    sp_words_per_event = dw /. float_of_int (max de 1);
  }

(* N raw links, each ping-ponging one preallocated packet between its
   endpoints forever: every event is one link delivery, so this isolates
   the scheduler + link fast path at N concurrent flows.  Steady state
   must allocate (essentially) zero minor words per event — the headline
   claim the baseline gate protects. *)
let scale_flows ~flows =
  let engine = Netsim.Engine.create () in
  let payload = Netsim.Payload.of_string (String.make 100 'x') in
  let pkt =
    Netsim.Packet.udp
      ~src:(Netsim.Addr.of_string "10.9.0.1")
      ~dst:(Netsim.Addr.of_string "10.9.0.2")
      ~src_port:9000 ~dst_port:9001 payload
  in
  let sent = ref 0 in
  for i = 1 to flows do
    let link =
      Netsim.Link.create engine
        ~name:(Printf.sprintf "flow%d" i)
        ~bandwidth_bps:10_000_000.0 ~latency:0.001 ()
    in
    let bounce from p =
      incr sent;
      ignore (Netsim.Link.send link ~from p)
    in
    Netsim.Link.set_receiver link Netsim.Link.B (bounce Netsim.Link.B);
    Netsim.Link.set_receiver link Netsim.Link.A (bounce Netsim.Link.A);
    (* Stagger the first transmissions so the flows are not phase-locked. *)
    Netsim.Engine.schedule engine
      ~at:(float_of_int i *. 1e-6)
      (fun () -> bounce Netsim.Link.A pkt)
  done;
  (* One bounce = 128 wire bytes at 10 Mb/s + 1 ms propagation. *)
  let hop = (128.0 *. 8.0 /. 10_000_000.0) +. 0.001 in
  let events_per_sim_s = float_of_int flows /. hop in
  let warm = if !smoke then 5_000 else 100_000 in
  let target =
    if !smoke then 30_000 else if !full then 10_000_000 else 1_500_000
  in
  (* Warm up for at least 1.25 simulated seconds: the per-direction
     Flowstat rings keep doubling until they hold one full window (1 s)
     of samples, and that growth must not leak into the measurement. *)
  let warmup_stop =
    Float.max (float_of_int warm /. events_per_sim_s) 1.25
  in
  let stop = warmup_stop +. (float_of_int target /. events_per_sim_s) in
  scale_measure ~warmup_stop ~stop
    ~sim:(fun stop -> Netsim.Engine.run_until engine ~stop)
    ~events:(fun () -> Netsim.Engine.events_processed engine)
    ~pkts:(fun () -> !sent)

(* A fan-out tree — one root host, 4 routers, 8 hosts per router — with a
   periodic sender addressing every leaf each tick.  Packets cross two
   links and one routing hop, so this exercises the full Topology/Node
   pipeline.  Packets are pooled like the mesh flows (one preallocated
   packet per leaf, re-originated every tick); the forwarding hop costs
   one small TTL-copy record per packet. *)
let scale_fanout () =
  let branches = 4 and leaves_per = 8 in
  let topo = Netsim.Topology.create () in
  let engine = Netsim.Topology.engine topo in
  let root = Netsim.Topology.add_host topo "root" "10.8.0.1" in
  let leaves = ref [] in
  for b = 1 to branches do
    let router =
      Netsim.Topology.add_host topo
        (Printf.sprintf "r%d" b)
        (Printf.sprintf "10.8.%d.254" b)
    in
    ignore (Netsim.Topology.connect topo root router);
    for l = 1 to leaves_per do
      let leaf =
        Netsim.Topology.add_host topo
          (Printf.sprintf "leaf%d_%d" b l)
          (Printf.sprintf "10.8.%d.%d" b l)
      in
      ignore (Netsim.Topology.connect topo router leaf);
      leaves := leaf :: !leaves
    done
  done;
  Netsim.Topology.compute_routes topo;
  let leaves = List.rev !leaves in
  let payload = Netsim.Payload.of_string (String.make 100 'y') in
  (* Packet pool: packets are immutable values, so one per leaf can be
     re-originated every tick without allocation. *)
  let pool =
    Array.of_list
      (List.map
         (fun leaf ->
           Netsim.Packet.udp ~src:(Netsim.Node.addr root)
             ~dst:(Netsim.Node.addr leaf) ~src_port:7000 ~dst_port:7001
             payload)
         leaves)
  in
  let sent = ref 0 in
  let period = 0.01 in
  let ticks = if !smoke then 320 else 3_000 in
  let until = float_of_int (ticks + 1) *. period in
  let rec tick () =
    Array.iter
      (fun pkt ->
        incr sent;
        Netsim.Node.originate root pkt)
      pool;
    if Netsim.Engine.now engine +. period < until then
      Netsim.Engine.schedule_after engine ~delay:period tick
  in
  Netsim.Engine.schedule_after engine ~delay:period tick;
  (* At least 1.5 simulated seconds of warmup — same Flowstat-ring
     reasoning as the flows workloads. *)
  let warmup_stop =
    Float.max (float_of_int (ticks / 10) *. period) 1.5
  in
  scale_measure ~warmup_stop ~stop:until
    ~sim:(fun stop -> Netsim.Topology.run_until topo ~stop)
    ~events:(fun () -> Netsim.Engine.events_processed engine)
    ~pkts:(fun () -> !sent)

let scale_json results =
  Obs.Json.Obj
    (List.map
       (fun (key, p) ->
         ( key,
           Obs.Json.Obj
             [
               ("events", Obs.Json.Int p.sp_events);
               ("events_per_s", Obs.Json.Float p.sp_events_per_s);
               ("pkts_per_s", Obs.Json.Float p.sp_pkts_per_s);
               ("minor_words_per_event", Obs.Json.Float p.sp_words_per_event);
             ] ))
       results)

(* Gate ONLY minor words/event: allocation counts are deterministic, while
   events/sec measures the host machine and would make the gate flaky. *)
let scale_check_against ~baseline_path results =
  let fail = ref [] in
  let complain fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  (match
     let contents =
       let ic = open_in_bin baseline_path in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     Obs.Json.of_string contents
   with
  | exception Sys_error message -> complain "cannot read baseline: %s" message
  | Error message ->
      complain "cannot parse baseline %s: %s" baseline_path message
  | Ok baseline -> (
      match Obs.Json.member "scale" baseline with
      | None -> complain "baseline %s has no \"scale\" section" baseline_path
      | Some entries ->
          List.iter
            (fun (key, point) ->
              match
                Option.bind (Obs.Json.member key entries) (fun e ->
                    Option.bind
                      (Obs.Json.member "minor_words_per_event" e)
                      Obs.Json.number)
              with
              | None -> complain "baseline has no words/event for scale/%s" key
              | Some base_words ->
                  (* +-25% relative plus two words of absolute slack: the
                     link workloads sit at ~0 words/event, so this gate is
                     effectively "stays allocation-free". *)
                  let ceiling = (base_words *. 1.25) +. 2.0 in
                  if point.sp_words_per_event > ceiling then
                    complain
                      "scale/%s allocates %.3f words/event (baseline %.3f, ceiling %.3f)"
                      key point.sp_words_per_event base_words ceiling)
            results));
  match !fail with
  | [] -> Printf.printf "\nscale gate: OK (baseline %s)\n" baseline_path
  | messages ->
      Printf.printf "\nscale gate: FAILED\n";
      List.iter (fun m -> Printf.printf "  - %s\n" m) (List.rev messages);
      exit 1

let scale () =
  section "scale -- event core at topology scale";
  let results =
    List.map
      (fun n -> (Printf.sprintf "flows_%d" n, scale_flows ~flows:n))
      [ 10; 100; 1000 ]
    @ [ ("fanout_tree", scale_fanout ()) ]
  in
  Printf.printf "%-14s %10s %14s %14s %18s\n" "workload" "events" "events/s"
    "pkts/s" "minor words/event";
  List.iter
    (fun (key, p) ->
      Printf.printf "%-14s %10d %14.0f %14.0f %18.3f\n" key p.sp_events
        p.sp_events_per_s p.sp_pkts_per_s p.sp_words_per_event)
    results;
  record "scale" (Obs.Json.Obj [ ("workloads", scale_json results) ]);
  baseline_add "scale" (scale_json results);
  match !perf_check with
  | None -> ()
  | Some baseline_path -> scale_check_against ~baseline_path results

(* ------------------------------------------------------------------ *)
(* par -- the partitioned parallel driver vs the sequential engine     *)
(* ------------------------------------------------------------------ *)

type par_point = { pp_events : int; pp_events_per_s : float }

(* Wall-clock events/sec over the post-warmup segment.  No allocation
   column here: [Gc.minor_words] is per-domain under OCaml 5, so the
   number would only describe the coordinating domain. *)
let par_measure ~warmup_stop ~stop ~sim ~events =
  sim warmup_stop;
  let e0 = events () in
  let t0 = Unix.gettimeofday () in
  sim stop;
  let dt = Unix.gettimeofday () -. t0 in
  let de = events () - e0 in
  { pp_events = de; pp_events_per_s = float_of_int de /. dt }

let par_events par () =
  Array.fold_left
    (fun acc e -> acc + Netsim.Engine.events_processed e)
    0
    (Netsim.Par_engine.engines par)

(* The flow mesh of [scale_flows], round-robined across the raw engines
   of a [Par_engine.create] driver.  The flows are independent — no cut,
   so the conservative windows are free-running and this measures the
   driver's best-case parallel speedup over the identical sequential
   workload ([~domains:1] delegates straight to [Engine.run_until]). *)
let par_flows ~flows ~domains =
  let par = Netsim.Par_engine.create ~domains in
  let engines = Netsim.Par_engine.engines par in
  let payload = Netsim.Payload.of_string (String.make 100 'x') in
  let pkt =
    Netsim.Packet.udp
      ~src:(Netsim.Addr.of_string "10.9.0.1")
      ~dst:(Netsim.Addr.of_string "10.9.0.2")
      ~src_port:9000 ~dst_port:9001 payload
  in
  for i = 1 to flows do
    let engine = engines.((i - 1) mod domains) in
    let link =
      Netsim.Link.create engine
        ~name:(Printf.sprintf "parflow%d" i)
        ~bandwidth_bps:10_000_000.0 ~latency:0.001 ()
    in
    let bounce from p = ignore (Netsim.Link.send link ~from p) in
    Netsim.Link.set_receiver link Netsim.Link.B (bounce Netsim.Link.B);
    Netsim.Link.set_receiver link Netsim.Link.A (bounce Netsim.Link.A);
    Netsim.Engine.schedule engine
      ~at:(float_of_int i *. 1e-6)
      (fun () -> bounce Netsim.Link.A pkt)
  done;
  let hop = (128.0 *. 8.0 /. 10_000_000.0) +. 0.001 in
  let events_per_sim_s = float_of_int flows /. hop in
  let warm = if !smoke then 5_000 else 100_000 in
  let target = if !smoke then 30_000 else 1_500_000 in
  let warmup_stop = Float.max (float_of_int warm /. events_per_sim_s) 1.25 in
  let stop = warmup_stop +. (float_of_int target /. events_per_sim_s) in
  par_measure ~warmup_stop ~stop
    ~sim:(fun stop -> Netsim.Par_engine.run_until par ~stop)
    ~events:(par_events par)

(* Four islands (router + 8 hosts each, handler-driven UDP ping-pong)
   bridged router-to-router in a chain.  The bridges are the only cut, so
   [Partition.plan] keeps islands whole, lookahead = the bridge latency,
   and one ping-pong flow per bridge keeps packets crossing the
   conduits.  Unlike [par_flows] this pays the real window cost: one
   synchronization round per 5 ms of simulated time. *)
let par_cut ~domains =
  let islands = 4 and hosts_per = 8 in
  let topo = Netsim.Topology.create () in
  let routers = ref [] and hosts = ref [] in
  for i = 1 to islands do
    let router =
      Netsim.Topology.add_host topo
        (Printf.sprintf "pr%d" i)
        (Printf.sprintf "10.11.%d.254" i)
    in
    for h = 1 to hosts_per do
      let host =
        Netsim.Topology.add_host topo
          (Printf.sprintf "ph%d_%d" i h)
          (Printf.sprintf "10.11.%d.%d" i h)
      in
      ignore
        (Netsim.Topology.connect topo router host ~latency:0.0005
           ~bandwidth_bps:100_000_000.0);
      hosts := (host, router) :: !hosts
    done;
    (match !routers with
    | prev :: _ ->
        ignore
          (Netsim.Topology.connect topo prev router ~latency:0.005
             ~bandwidth_bps:100_000_000.0)
    | [] -> ());
    routers := router :: !routers
  done;
  Netsim.Topology.compute_routes topo;
  let par =
    match Netsim.Par_engine.of_topology topo ~domains with
    | Ok par -> par
    | Error message -> failwith ("par_cut: " ^ message)
  in
  (* Handlers and injection come after the shard (the driver requires an
     empty schedule at shard time). *)
  let payload = Netsim.Payload.of_string (String.make 64 'z') in
  let bounce peer_port node packet =
    Netsim.Node.send_udp node ~dst:packet.Netsim.Packet.src
      ~src_port:peer_port
      ~dst_port:
        (match packet.Netsim.Packet.l4 with
        | Netsim.Packet.Udp h -> h.Netsim.Packet.udp_src
        | _ -> peer_port)
      payload
  in
  List.iter
    (fun (host, router) ->
      Netsim.Node.on_udp host ~port:8001 (bounce 8001);
      Netsim.Node.on_udp router ~port:8000 (bounce 8000);
      Netsim.Node.send_udp host
        ~dst:(Netsim.Node.addr router)
        ~src_port:8001 ~dst_port:8000 payload)
    !hosts;
  let rec seed_bridges = function
    | a :: (b :: _ as rest) ->
        Netsim.Node.on_udp a ~port:9100 (bounce 9100);
        Netsim.Node.on_udp b ~port:9100 (bounce 9100);
        Netsim.Node.send_udp a
          ~dst:(Netsim.Node.addr b)
          ~src_port:9100 ~dst_port:9100 payload;
        seed_bridges rest
    | _ -> ()
  in
  seed_bridges !routers;
  let warmup_stop = 0.5 in
  let stop = warmup_stop +. if !smoke then 1.0 else 5.0 in
  par_measure ~warmup_stop ~stop
    ~sim:(fun stop -> Netsim.Par_engine.run_until par ~stop)
    ~events:(par_events par)

let par_ratio p seq = p.pp_events_per_s /. seq.pp_events_per_s

let par_json ~cores rows =
  Obs.Json.Obj
    (("cores", Obs.Json.Int cores)
    :: List.map
         (fun (key, p, ratio) ->
           let fields =
             [
               ("events", Obs.Json.Int p.pp_events);
               ("events_per_s", Obs.Json.Float p.pp_events_per_s);
             ]
           in
           let fields =
             match ratio with
             | Some r -> fields @ [ ("ratio_vs_seq", Obs.Json.Float r) ]
             | None -> fields
           in
           (key, Obs.Json.Obj fields))
         rows)

(* The gate is a SAME-RUN ratio (like the jit >= interp gates): 4 domains
   must process the uncut flow mesh at >= 2x the single-domain rate
   measured moments earlier on the same machine.  Absolute events/s are
   never gated.  On hosts without at least 4 cores the 2x bound is
   physically unreachable, so the gate reports itself skipped instead of
   failing the build. *)
let par_check ~cores ~seq ~par4 =
  if cores < 4 then
    Printf.printf
      "\npar gate: SKIPPED (host has %d core(s); the >=2x par4 gate needs 4)\n"
      cores
  else begin
    let ratio = par_ratio par4 seq in
    if ratio >= 2.0 then
      Printf.printf "\npar gate: OK (par4/seq = %.2fx >= 2.00x)\n" ratio
    else begin
      Printf.printf
        "\npar gate: FAILED\n  - par4 runs the flow mesh at %.2fx the \
         same-run sequential rate (need >= 2.00x)\n"
        ratio;
      exit 1
    end
  end

let par () =
  section "par -- partitioned parallel driver vs the sequential engine";
  let cores = Domain.recommended_domain_count () in
  let flows = 1000 in
  let seq = par_flows ~flows ~domains:1 in
  let par2 = par_flows ~flows ~domains:2 in
  let par4 = par_flows ~flows ~domains:4 in
  let cut_seq = par_cut ~domains:1 in
  let cut4 = par_cut ~domains:4 in
  let rows =
    [
      ("flows_seq", seq, None);
      ("flows_par2", par2, Some (par_ratio par2 seq));
      ("flows_par4", par4, Some (par_ratio par4 seq));
      ("cut_seq", cut_seq, None);
      ("cut_par4", cut4, Some (par_ratio cut4 cut_seq));
    ]
  in
  Printf.printf "host cores: %d\n" cores;
  Printf.printf "%-12s %10s %14s %10s\n" "workload" "events" "events/s"
    "vs seq";
  List.iter
    (fun (key, p, ratio) ->
      Printf.printf "%-12s %10d %14.0f %10s\n" key p.pp_events
        p.pp_events_per_s
        (match ratio with
        | Some r -> Printf.sprintf "%.2fx" r
        | None -> "-"))
    rows;
  let json = par_json ~cores rows in
  record "par" json;
  baseline_add "par" json;
  match !perf_check with
  | None -> ()
  | Some _ -> par_check ~cores ~seq ~par4

(* ------------------------------------------------------------------ *)
(* faults -- the experiments under the network-dynamics fault matrix   *)
(* ------------------------------------------------------------------ *)

(* Four scenarios (baseline / lossy / flappy / churn) against the three
   deployed-ASP experiments, each with a Netsim.Faults scenario armed on
   its topology.  The simulation and the fault plane draw from seeded
   RNGs, so every count below is deterministic: the committed baseline
   gates them like the allocation counts above, and the shape checks
   assert the adaptation the paper's applications are supposed to show --
   degrade instead of collapse, recover once the fault clears.  The
   section ignores --smoke: the runs are already short, and the counts
   must match the one committed baseline either way. *)

let fevent ?until ?target ~at kind =
  {
    Netsim.Faults.ft_at = at;
    ft_until = until;
    ft_kind = kind;
    ft_target = target;
  }

type fault_cell = {
  fc_counts : (string * int) list;  (* gated against the baseline *)
  fc_shape : string list;  (* failed shape assertions; [] when healthy *)
}

let shape_check checks =
  List.filter_map
    (fun (ok, message) -> if ok then None else Some message)
    checks

(* Audio (quick Fig. 6, 50 s).  Lossy drops and corrupts frames on the
   backbone; flappy cuts it twice; churn crashes the router (keeping its
   ASP state) through the heavy-load phase. *)
let faults_audio scenario_name =
  let open Netsim.Faults in
  let scenario =
    match scenario_name with
    | "lossy" ->
        scenario_of_events ~seed:7
          [
            fevent ~at:2.0 ~until:45.0 ~target:(Tlink "backbone") (Loss 0.03);
            fevent ~at:2.0 ~until:45.0 ~target:(Tlink "backbone")
              (Corrupt 0.01);
          ]
    | "flappy" ->
        scenario_of_events ~seed:7
          [
            fevent ~at:12.0 ~until:14.0 ~target:(Tlink "backbone") Link_down;
            fevent ~at:26.0 ~until:28.0 ~target:(Tlink "backbone") Link_down;
          ]
    | "churn" ->
        scenario_of_events ~seed:7
          [
            fevent ~at:15.0 ~until:18.0 ~target:(Tnode "router")
              (Crash { wipe = false });
          ]
    | _ -> empty
  in
  let result =
    Asp.Audio_experiment.run
      (Asp.Audio_experiment.quick_config ~faults:scenario ())
  in
  let _, m16, m8 = result.Asp.Audio_experiment.wire_quality_counts in
  let sent = result.Asp.Audio_experiment.frames_sent in
  let received = result.Asp.Audio_experiment.frames_received in
  let wire_after t0 =
    List.exists
      (fun (t, rate) -> t >= t0 && rate > 0.0)
      result.Asp.Audio_experiment.series
  in
  let shape =
    shape_check
      ([
         ( received > 0,
           Printf.sprintf "audio/%s: no frames delivered" scenario_name );
         ( m16 + m8 > 0,
           Printf.sprintf
             "audio/%s: no distilled (mono) frames on the wire -- the ASP \
              did not degrade under load"
             scenario_name );
       ]
      @
      match scenario_name with
      | "lossy" ->
          [
            ( received * 10 >= sent * 3,
              "audio/lossy: collapsed -- under 30% of frames delivered" );
          ]
      | "flappy" ->
          [
            (received < sent, "audio/flappy: the flaps lost no frames");
            ( wire_after 30.0,
              "audio/flappy: no audio on the wire after the flaps" );
          ]
      | "churn" ->
          [
            (received < sent, "audio/churn: the router crash lost no frames");
            ( wire_after 20.0,
              "audio/churn: no audio on the wire after the restart" );
          ]
      | _ -> [])
  in
  {
    fc_counts =
      [
        ("frames_sent", sent);
        ("frames_received", received);
        ("mono_frames", m16 + m8);
        ("silent_periods", result.Asp.Audio_experiment.silent_periods);
      ];
    fc_shape = shape;
  }

(* MPEG (120-frame movie, clients at 0.5/3/6 s).  Churn crashes the router
   across client 1's stream; client 3 starts after the restart, so its
   frames prove the server re-fans-out through the recovered router. *)
let faults_mpeg scenario_name =
  let open Netsim.Faults in
  let scenario =
    match scenario_name with
    | "lossy" ->
        scenario_of_events ~seed:13
          [
            fevent ~at:1.0 ~until:10.0 ~target:(Tsegment "client-segment")
              (Loss 0.05);
          ]
    | "flappy" ->
        scenario_of_events ~seed:13
          [ fevent ~at:2.0 ~until:2.6 ~target:(Tlink "backbone") Link_down ]
    | "churn" ->
        scenario_of_events ~seed:13
          [
            fevent ~at:1.5 ~until:2.5 ~target:(Tnode "router")
              (Crash { wipe = false });
          ]
    | _ -> empty
  in
  let config =
    {
      (Asp.Mpeg_experiment.default_config ~faults:scenario ()) with
      Asp.Mpeg_experiment.movie_frames = 120;
      duration = 16.0;
    }
  in
  let result = Asp.Mpeg_experiment.run config in
  let frames = result.Asp.Mpeg_experiment.client_frames in
  let min_frames = List.fold_left min max_int frames in
  let total_frames = List.fold_left ( + ) 0 frames in
  let last_frames = match List.rev frames with f :: _ -> f | [] -> 0 in
  let streams = result.Asp.Mpeg_experiment.server_streams in
  let shape =
    shape_check
      ([
         ( min_frames > 0,
           Printf.sprintf "mpeg/%s: a client played no frames" scenario_name );
       ]
      @
      match scenario_name with
      | "flappy" | "churn" ->
          [
            ( last_frames > 0,
              Printf.sprintf
                "mpeg/%s: the client that started after the recovery got \
                 no frames -- the server did not re-fan-out"
                scenario_name );
            ( streams >= 2,
              Printf.sprintf
                "mpeg/%s: the server never opened a fresh stream after the \
                 fault"
                scenario_name );
          ]
      | _ -> [])
  in
  {
    fc_counts =
      [
        ("server_streams", streams);
        ("server_frames_sent", result.Asp.Mpeg_experiment.server_frames_sent);
        ("client_frames_total", total_frames);
        ("client_frames_min", min_frames);
      ];
    fc_shape = shape;
  }

(* HTTP (ASP gateway, 4 client machines, 8 workers, 8 s).  Churn crashes
   one of the two physical servers mid-run; the clients' bounded retry
   plus the surviving server keep replies flowing, and the restarted
   server picks requests back up. *)
let faults_http scenario_name =
  let open Netsim.Faults in
  let scenario =
    match scenario_name with
    | "lossy" ->
        scenario_of_events ~seed:23
          [ fevent ~at:1.0 ~until:6.0 ~target:(Tsegment "cluster") (Loss 0.03) ]
    | "flappy" ->
        scenario_of_events ~seed:23
          [ fevent ~at:3.0 ~until:4.0 ~target:(Tlink "access0") Link_down ]
    | "churn" ->
        scenario_of_events ~seed:23
          [
            fevent ~at:2.5 ~until:5.0 ~target:(Tnode "server1")
              (Crash { wipe = false });
          ]
    | _ -> empty
  in
  let config =
    {
      Asp.Http_experiment.default_config with
      Asp.Http_experiment.duration = 8.0;
      warmup = 2.0;
      client_count = 4;
      trace_requests = 4_000;
      faults = Some scenario;
    }
  in
  let point =
    Asp.Http_experiment.run_point config
      (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit)
      ~workers:8
  in
  let replies =
    int_of_float
      ((point.Asp.Http_experiment.replies_per_s
       *. (config.Asp.Http_experiment.duration
          -. config.Asp.Http_experiment.warmup))
      +. 0.5)
  in
  let load0, load1 = point.Asp.Http_experiment.server_loads in
  let shape =
    shape_check
      ([
         ( replies > 0,
           Printf.sprintf "http/%s: no replies completed" scenario_name );
         ( point.Asp.Http_experiment.gateway_requests > 0,
           Printf.sprintf "http/%s: the ASP gateway routed no requests"
             scenario_name );
       ]
      @
      match scenario_name with
      | "churn" ->
          [
            ( load0 > 0,
              "http/churn: the surviving server served no requests" );
            ( load1 > 0,
              "http/churn: the crashed server never served -- no recovery \
               after restart" );
          ]
      | _ -> [])
  in
  {
    fc_counts =
      [
        ("replies", replies);
        ("gateway_requests", point.Asp.Http_experiment.gateway_requests);
        ("server0_requests", load0);
        ("server1_requests", load1);
      ];
    fc_shape = shape;
  }

(* The gate: every deterministic count within +-25% (plus a few counts of
   absolute slack for the small ones) of the committed baseline, both
   directions -- a fault cell drifting in either direction is a behaviour
   change -- plus every shape assertion. Shared by the [faults] and
   [adapt] sections; [section] names the baseline document member. *)
let cells_check_against ~section ~baseline_path ~shape_failures cells =
  let fail = ref (List.rev shape_failures) in
  let complain fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  (match
     let contents =
       let ic = open_in_bin baseline_path in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     Obs.Json.of_string contents
   with
  | exception Sys_error message -> complain "cannot read baseline: %s" message
  | Error message ->
      complain "cannot parse baseline %s: %s" baseline_path message
  | Ok baseline -> (
      match Obs.Json.member section baseline with
      | None ->
          complain "baseline %s has no %S section" baseline_path section
      | Some entries ->
          List.iter
            (fun (key, cell) ->
              match Obs.Json.member key entries with
              | None -> complain "baseline has no %s cell %s" section key
              | Some entry ->
                  List.iter
                    (fun (count_name, value) ->
                      match
                        Option.bind
                          (Obs.Json.member count_name entry)
                          Obs.Json.number
                      with
                      | None ->
                          complain "baseline %s/%s has no %s" section key
                            count_name
                      | Some base ->
                          let v = float_of_int value in
                          let lo = (base *. 0.75) -. 8.0
                          and hi = (base *. 1.25) +. 8.0 in
                          if v < lo || v > hi then
                            complain
                              "%s/%s: %s=%d is outside [%.0f, %.0f] \
                               (baseline %.0f)"
                              section key count_name value lo hi base)
                    cell.fc_counts)
            cells));
  match List.rev !fail with
  | [] ->
      Printf.printf "\n%s gate: OK (baseline %s)\n" section baseline_path
  | messages ->
      Printf.printf "\n%s gate: FAILED\n" section;
      List.iter (fun m -> Printf.printf "  - %s\n" m) messages;
      exit 1

let faults () =
  section "faults -- experiments under the network-dynamics fault matrix";
  let cells =
    List.concat_map
      (fun name ->
        [
          ("audio_" ^ name, faults_audio name);
          ("mpeg_" ^ name, faults_mpeg name);
          ("http_" ^ name, faults_http name);
        ])
      [ "baseline"; "lossy"; "flappy"; "churn" ]
  in
  Printf.printf "%-16s %s\n" "cell" "counts";
  List.iter
    (fun (key, cell) ->
      Printf.printf "%-16s %s\n" key
        (String.concat "  "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              cell.fc_counts)))
    cells;
  let shape_failures = List.concat_map (fun (_, cell) -> cell.fc_shape) cells in
  (match shape_failures with
  | [] ->
      Printf.printf "\nadaptation shape: OK (%d cells)\n" (List.length cells)
  | messages ->
      Printf.printf "\nadaptation shape: FAILED\n";
      List.iter (fun m -> Printf.printf "  - %s\n" m) messages);
  let cells_json =
    Obs.Json.Obj
      (List.map
         (fun (key, cell) ->
           ( key,
             Obs.Json.Obj
               (List.map
                  (fun (k, v) -> (k, Obs.Json.Int v))
                  cell.fc_counts) ))
         cells)
  in
  record "faults"
    (Obs.Json.Obj
       [
         ("cells", cells_json);
         ( "shape_failures",
           Obs.Json.List
             (List.map (fun m -> Obs.Json.String m) shape_failures) );
       ]);
  baseline_add "faults" cells_json;
  match !perf_check with
  | None -> if shape_failures <> [] then exit 1
  | Some baseline_path ->
      cells_check_against ~section:"faults" ~baseline_path ~shape_failures
        cells

(* ------------------------------------------------------------------ *)
(* adapt -- the closed loop vs the static ASPs under the fault matrix  *)
(* ------------------------------------------------------------------ *)

(* The paper's core quantitative story: the same seeded fault scenario
   run twice, once with the static ASP and once with the adaptation
   plane armed ([Adapt.Plane] hot-swapping variants through in-band
   deploy epochs). Goodput is each experiment's own currency -- audio
   frames delivered, decodable MPEG I+P frames, HTTP replies completed.
   Everything is deterministic, so the counts are gated like the faults
   matrix, and the shape assertions pin the headline: adaptive beats
   static in every fault cell, and is an exact tie with zero swaps when
   the network is healthy (monitors cost nothing, rules stay quiet).
   Like [faults], this section ignores --smoke. The registry is reset
   around each run the way the tier-1 adaptation tests do, so the
   monitors of consecutive runs never see each other's counters. *)

let adapt_cell ~name ~healthy ~static ~adaptive ~stats =
  let swaps, failed, rollbacks =
    match stats with
    | Some stats ->
        ( stats.Extnet.Adapt.Plane.st_swaps,
          stats.Extnet.Adapt.Plane.st_failed_swaps,
          stats.Extnet.Adapt.Plane.st_rollbacks )
    | None -> (0, 0, 0)
  in
  let shape =
    shape_check
      ([
         ( stats <> None,
           Printf.sprintf "adapt/%s: armed run reported no plane stats" name );
         ( failed = 0,
           Printf.sprintf "adapt/%s: %d failed swap(s)" name failed );
         ( rollbacks = 0,
           Printf.sprintf "adapt/%s: %d guard rollback(s)" name rollbacks );
       ]
      @
      if healthy then
        [
          ( adaptive = static,
            Printf.sprintf
              "adapt/%s: the armed-but-idle plane changed goodput (%d vs \
               %d static)"
              name adaptive static );
          ( swaps = 0,
            Printf.sprintf "adapt/%s: swapped on a healthy network" name );
        ]
      else
        [
          ( adaptive > static,
            Printf.sprintf
              "adapt/%s: adaptive did not beat static (%d vs %d)" name
              adaptive static );
          ( swaps >= 1,
            Printf.sprintf "adapt/%s: no swap under the fault" name );
        ])
  in
  {
    fc_counts =
      [
        ("static_goodput", static);
        ("adaptive_goodput", adaptive);
        ("swaps", swaps);
        ("rollbacks", rollbacks);
      ];
    fc_shape = shape;
  }

(* Audio under a capacity fault (or none): the synthetic load schedule is
   off, so the static router policy -- which reads offered load and is
   blind to shrunken capacity -- never degrades, while the closed loop
   watches the drop rate. *)
let adapt_audio ?faults ~name ~healthy () =
  let config adaptation =
    {
      (Asp.Audio_experiment.quick_config ~deploy:Asp.Deploy_mode.In_band
         ?faults ?adaptation ())
      with
      Asp.Audio_experiment.schedule = [ (0.0, 0.0) ];
    }
  in
  Obs.Registry.reset Obs.Registry.default;
  let static = Asp.Audio_experiment.run (config None) in
  Obs.Registry.reset Obs.Registry.default;
  let adaptive =
    Asp.Audio_experiment.run
      (config (Some (Asp.Audio_experiment.adaptive_policy ())))
  in
  adapt_cell ~name ~healthy
    ~static:static.Asp.Audio_experiment.frames_received
    ~adaptive:adaptive.Asp.Audio_experiment.frames_received
    ~stats:adaptive.Asp.Audio_experiment.adaptation

let adapt_baseline () = adapt_audio ~name:"baseline" ~healthy:true ()

let adapt_flappy () =
  let congest =
    Netsim.Faults.scenario_of_events ~seed:7
      [
        fevent ~at:8.0 ~until:30.0
          ~target:(Netsim.Faults.Tsegment "client-segment")
          (Netsim.Faults.Congest { bandwidth_factor = 0.1; queue_factor = 1.0 });
      ]
  in
  adapt_audio ~faults:congest ~name:"flappy" ~healthy:false ()

(* Severe MPEG client-segment congestion: the loop swaps the router
   filter to the authenticated B-frame-shedding variant; goodput is the
   decodable stream, the I- and P-frames that survive. *)
let adapt_lossy () =
  let congest =
    Netsim.Faults.scenario_of_events ~seed:11
      [
        fevent ~at:2.0 ~until:16.0
          ~target:(Netsim.Faults.Tsegment "client-segment")
          (Netsim.Faults.Congest
             { bandwidth_factor = 0.03; queue_factor = 1.0 });
      ]
  in
  let ip_frames result =
    List.fold_left
      (fun acc (i, p, _) -> acc + i + p)
      0 result.Asp.Mpeg_experiment.client_frame_kinds
  in
  Obs.Registry.reset Obs.Registry.default;
  let static =
    Asp.Mpeg_experiment.run
      (Asp.Mpeg_experiment.default_config ~deploy:Asp.Deploy_mode.In_band
         ~faults:congest ())
  in
  Obs.Registry.reset Obs.Registry.default;
  let adaptive =
    Asp.Mpeg_experiment.run
      (Asp.Mpeg_experiment.default_config ~deploy:Asp.Deploy_mode.In_band
         ~faults:congest
         ~adaptation:(Asp.Mpeg_experiment.adaptive_policy ())
         ())
  in
  adapt_cell ~name:"lossy" ~healthy:false ~static:(ip_frames static)
    ~adaptive:(ip_frames adaptive)
    ~stats:adaptive.Asp.Mpeg_experiment.adaptation

(* server1 crashes mid-run: the static Modulo gateway keeps assigning
   connections to the corpse (2 s client retry each); the loop sees the
   retry rate, swaps the failover gateway in and its health prober routes
   everything to the survivor. *)
let adapt_churn () =
  let crash =
    Netsim.Faults.scenario_of_events ~seed:3
      [
        fevent ~at:4.0
          ~target:(Netsim.Faults.Tnode "server1")
          (Netsim.Faults.Crash { wipe = false });
      ]
  in
  let config adaptation =
    {
      Asp.Http_experiment.default_config with
      Asp.Http_experiment.duration = 14.0;
      warmup = 2.0;
      client_count = 4;
      trace_requests = 20_000;
      deploy = Asp.Deploy_mode.In_band;
      faults = Some crash;
      adaptation;
    }
  in
  let setup = Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit in
  let replies point =
    int_of_float
      ((point.Asp.Http_experiment.replies_per_s *. (14.0 -. 2.0)) +. 0.5)
  in
  Obs.Registry.reset Obs.Registry.default;
  let static = Asp.Http_experiment.run_point (config None) setup ~workers:8 in
  Obs.Registry.reset Obs.Registry.default;
  let adaptive =
    Asp.Http_experiment.run_point
      (config (Some (Asp.Http_experiment.adaptive_policy ())))
      setup ~workers:8
  in
  adapt_cell ~name:"churn" ~healthy:false ~static:(replies static)
    ~adaptive:(replies adaptive)
    ~stats:adaptive.Asp.Http_experiment.adaptation

(* The multi-node cell: the same server1 crash against a 2-gateway
   fleet, three ways. Static keeps half the connections pointed at the
   corpse; one independent plane per gateway adapts only where its own
   clients' retries trip the rule; the coordinated plane sees the
   fleet-wide retry rate and retunes BOTH gateways through one staged
   rollout. Coordinated must beat both — that margin is what the
   coordination tentpole buys. *)
let adapt_fleet_churn () =
  let crash =
    Netsim.Faults.scenario_of_events ~seed:3
      [
        fevent ~at:4.0
          ~target:(Netsim.Faults.Tnode "server1")
          (Netsim.Faults.Crash { wipe = false });
      ]
  in
  let config coordination adaptation =
    {
      Asp.Http_experiment.default_config with
      Asp.Http_experiment.duration = 14.0;
      warmup = 2.0;
      (* Three clients round-robin over two gateways: gateway1 serves a
         single client, so its local retry rate runs at a third of the
         fleet aggregate. *)
      client_count = 3;
      trace_requests = 20_000;
      deploy = Asp.Deploy_mode.In_band;
      faults = Some crash;
      adaptation;
      gateways = 2;
      coordination;
    }
  in
  let setup = Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit in
  let replies point =
    int_of_float
      ((point.Asp.Http_experiment.replies_per_s *. (14.0 -. 2.0)) +. 0.5)
  in
  (* The canned policy with the retry threshold raised to 2/s: above
     what any single gateway's clients generate during the crash, below
     the fleet-wide aggregate. A per-node plane watching only its own
     noisy slice misses the flap (or only the busier gateway catches
     it); the coordinated plane sees the sum and fails the whole fleet
     over in one staged rollout — the aggregation argument for
     coordination, measured. *)
  let policy () =
    match
      Adapt.Policy.parse
        {|period 0.5
alpha 0.4
rule failover: when retry_rate > 2 for 0.5 cooldown 6 do swap http-gateway failover
guard goodput window 4 min-ratio 0.5
|}
    with
    | Ok policy -> policy
    | Error msg -> failwith ("bench adapt_fleet_churn policy: " ^ msg)
  in
  Obs.Registry.reset Obs.Registry.default;
  let static =
    Asp.Http_experiment.run_point
      (config Asp.Http_experiment.Coordinated None)
      setup ~workers:8
  in
  Obs.Registry.reset Obs.Registry.default;
  let independent =
    Asp.Http_experiment.run_point
      (config Asp.Http_experiment.Independent (Some (policy ())))
      setup ~workers:8
  in
  Obs.Registry.reset Obs.Registry.default;
  let coordinated =
    Asp.Http_experiment.run_point
      (config Asp.Http_experiment.Coordinated (Some (policy ())))
      setup ~workers:8
  in
  let s = replies static
  and i = replies independent
  and c = replies coordinated in
  let stats = coordinated.Asp.Http_experiment.adaptation in
  let swaps, failed =
    match stats with
    | Some stats ->
        ( stats.Extnet.Adapt.Plane.st_swaps,
          stats.Extnet.Adapt.Plane.st_failed_swaps )
    | None -> (0, 0)
  in
  let shape =
    shape_check
      [
        ( stats <> None,
          "adapt/fleet-churn: coordinated run reported no plane stats" );
        (failed = 0, Printf.sprintf "adapt/fleet-churn: %d failed swap(s)" failed);
        ( swaps >= 1,
          "adapt/fleet-churn: no coordinated swap under the crash" );
        ( c > s,
          Printf.sprintf
            "adapt/fleet-churn: coordinated did not beat static (%d vs %d)" c s
        );
        ( c > i,
          Printf.sprintf
            "adapt/fleet-churn: coordinated did not beat independent \
             per-node planes (%d vs %d)"
            c i );
        ( i > s,
          Printf.sprintf
            "adapt/fleet-churn: the partially-adapting independent planes \
             did not even beat static (%d vs %d)"
            i s );
      ]
  in
  {
    fc_counts =
      [
        ("static_goodput", s);
        ("independent_goodput", i);
        ("coordinated_goodput", c);
        ("swaps", swaps);
      ];
    fc_shape = shape;
  }

let adapt () =
  section "adapt -- closed-loop adaptation vs static ASPs under faults";
  let cells =
    [
      ("baseline", adapt_baseline ());
      ("lossy", adapt_lossy ());
      ("flappy", adapt_flappy ());
      ("churn", adapt_churn ());
      ("fleet-churn", adapt_fleet_churn ());
    ]
  in
  Printf.printf "%-10s %s\n" "cell" "counts";
  List.iter
    (fun (key, cell) ->
      Printf.printf "%-10s %s\n" key
        (String.concat "  "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              cell.fc_counts)))
    cells;
  let shape_failures = List.concat_map (fun (_, cell) -> cell.fc_shape) cells in
  (match shape_failures with
  | [] ->
      Printf.printf "\nadaptive-vs-static shape: OK (%d cells)\n"
        (List.length cells)
  | messages ->
      Printf.printf "\nadaptive-vs-static shape: FAILED\n";
      List.iter (fun m -> Printf.printf "  - %s\n" m) messages);
  let cells_json =
    Obs.Json.Obj
      (List.map
         (fun (key, cell) ->
           ( key,
             Obs.Json.Obj
               (List.map
                  (fun (k, v) -> (k, Obs.Json.Int v))
                  cell.fc_counts) ))
         cells)
  in
  record "adapt"
    (Obs.Json.Obj
       [
         ("cells", cells_json);
         ( "shape_failures",
           Obs.Json.List
             (List.map (fun m -> Obs.Json.String m) shape_failures) );
       ]);
  baseline_add "adapt" cells_json;
  match !perf_check with
  | None -> if shape_failures <> [] then exit 1
  | Some baseline_path ->
      cells_check_against ~section:"adapt" ~baseline_path ~shape_failures
        cells

(* ------------------------------------------------------------------ *)

let all () =
  fig3 ();
  fig6 ();
  fig7 ();
  fig8 ();
  mpeg ();
  backends ();
  verify ();
  ext ()

(* The metrics sidecar: everything the instrumented layers accumulated
   while the sections ran, as one deterministic JSON document next to the
   printed tables. *)
let write_metrics_sidecar () =
  match !metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (Obs.Registry.to_json_string Obs.Registry.default);
      close_out oc;
      Printf.printf "\nwrote metrics JSON to %s\n" path

(* The combined perf baseline: whatever baseline sections ran ("asps"
   from [perf], "scale" from [scale]) as one "planp-bench-perf/1"
   document; this is the file committed as BENCH_PERF.json. *)
let write_perf_baseline () =
  match !perf_out with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          ([
             ("format", Obs.Json.String "planp-bench-perf/1");
             ("smoke", Obs.Json.Bool !smoke);
           ]
          @ !baseline_sections)
      in
      let oc = open_out_bin path in
      output_string oc (Obs.Json.to_string doc);
      close_out oc;
      Printf.printf "\nwrote perf baseline JSON to %s\n" path

(* The per-figure summary: the headline numbers of every section that ran,
   one JSON document, for dashboards and regression diffing. *)
let write_json_summary () =
  match !json_out with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("format", Obs.Json.String "planp-bench/1");
            ("quick", Obs.Json.Bool !quick);
            ("sections", Obs.Json.Obj !summary);
          ]
      in
      let oc = open_out_bin path in
      output_string oc (Obs.Json.to_string doc);
      close_out oc;
      Printf.printf "\nwrote benchmark summary JSON to %s\n" path

(* Comparing a --smoke run against a full-mode baseline (or vice versa)
   gates nothing real — iteration counts differ enough that allocation
   accounting and ratios drift.  Refuse the mismatch up front instead of
   letting the sections quietly pass. *)
let check_baseline_mode ~baseline_path =
  match
    let ic = open_in_bin baseline_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Obs.Json.of_string s
  with
  | exception Sys_error _ -> () (* each section reports unreadable baselines *)
  | Error _ -> ()
  | Ok baseline -> (
      match Obs.Json.member "smoke" baseline with
      | Some (Obs.Json.Bool base_smoke) when base_smoke <> !smoke ->
          Printf.eprintf
            "baseline %s was written %s --smoke but this run is %s it; \
             regenerate the baseline or match the flags\n"
            baseline_path
            (if base_smoke then "with" else "without")
            (if !smoke then "with" else "without");
          exit 1
      | Some _ | None -> ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        parse rest
    | "--metrics-out" :: [] ->
        prerr_endline "--metrics-out needs a FILE argument";
        exit 1
    | "--json-out" :: path :: rest ->
        json_out := Some path;
        parse rest
    | "--json-out" :: [] ->
        prerr_endline "--json-out needs a FILE argument";
        exit 1
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--perf-out" :: path :: rest ->
        perf_out := Some path;
        parse rest
    | "--perf-out" :: [] ->
        prerr_endline "--perf-out needs a FILE argument";
        exit 1
    | "--check" :: path :: rest ->
        perf_check := Some path;
        parse rest
    | "--check" :: [] ->
        prerr_endline "--check needs a BASELINE argument";
        exit 1
    | arg :: rest -> arg :: parse rest
  in
  let args = parse args in
  Planp_runtime.Prims.install ();
  (match !perf_check with
  | Some baseline_path -> check_baseline_mode ~baseline_path
  | None -> ());
  (match args with
  | [] | [ "all" ] -> all ()
  | sections ->
      List.iter
        (function
          | "fig3" -> fig3 ()
          | "fig6" -> fig6 ()
          | "fig7" -> fig7 ()
          | "fig8" -> fig8 ()
          | "mpeg" -> mpeg ()
          | "backends" -> backends ()
          | "verify" -> verify ()
          | "ext" -> ext ()
          | "perf" -> perf ()
          | "cache" -> cache ()
          | "scale" -> scale ()
          | "par" -> par ()
          | "faults" -> faults ()
          | "adapt" -> adapt ()
          | other ->
              Printf.eprintf
                "unknown section %s (expected fig3|fig6|fig7|fig8|mpeg|backends|verify|ext|perf|cache|scale|par|faults|adapt|all)\n"
                other;
              exit 1)
        sections);
  write_perf_baseline ();
  write_metrics_sidecar ();
  write_json_summary ()
