(* planpc — the PLAN-P program checker and compiler driver.

   Subcommands:
     check  FILE     parse + type check
     verify FILE     run the safety analyses (paper 2.1)
     ast    FILE     dump the parsed program (pretty-printed PLAN-P)
     bytecode FILE   dump the compiled bytecode
     time   FILE     measure code-generation time per backend (Fig. 3)
     run    FILE     run on a traced topology, export metrics/timeline
     stats  FILE     run and print the metrics registry
     deploy FILE     ship the program in-band to simulated deploy daemons
     undeploy FILE   deploy, then retire the program from every daemon
     adapt  FILE     run under a closed-loop adaptation policy
     prims           list registered primitives *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let write_file path contents =
  match open_out_bin path with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error message ->
      prerr_endline ("planpc: " ^ message);
      exit 1

let or_die = function
  | Ok value -> value
  | Error message ->
      prerr_endline ("planpc: " ^ message);
      exit 1

let checked_of_file path =
  Planp_runtime.Prims.install ();
  or_die (Extnet.check_source (read_file path))

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PLAN-P source file")

let check_cmd =
  let run path =
    let checked = checked_of_file path in
    let chans = Planp.Ast.channels checked.Planp.Typecheck.program in
    Printf.printf "%s: OK (%d lines, %d channel(s), protocol state %s)\n" path
      (Planp.Ast.line_count (read_file path))
      (List.length chans)
      (Planp.Ptype.to_string checked.Planp.Typecheck.proto_type)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type check a PLAN-P program")
    Term.(const run $ file_arg)

let verify_cmd =
  let run path =
    let checked = checked_of_file path in
    (* The runtime's primitive classification, so the printed
       cacheability lines match what Runtime.install will decide. *)
    let report =
      Planp_analysis.Verifier.verify
        ~classify:Planp_runtime.Flowcache.classify
        checked.Planp.Typecheck.program
    in
    Format.printf "%a@." Planp_analysis.Verifier.pp report;
    if not (Planp_analysis.Verifier.passes report) then exit 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the safety analyses: termination, delivery, duplication")
    Term.(const run $ file_arg)

let ast_cmd =
  let run path =
    let checked = checked_of_file path in
    print_string (Planp.Pretty.program_to_string checked.Planp.Typecheck.program)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Pretty-print the parsed program")
    Term.(const run $ file_arg)

let fold_cmd =
  let run path =
    let checked = checked_of_file path in
    (* Evaluate the globals so folding can inline them, like the backends. *)
    let world, _, _ = Planp_runtime.World.dummy () in
    let globals =
      List.fold_left
        (fun globals decl ->
          match decl with
          | Planp.Ast.Dval ({ Planp.Ast.bind_name; bind_expr; _ }, _) ->
              globals
              @ [ (bind_name,
                   Planp_runtime.Interp.eval_const ~world ~globals bind_expr) ]
          | _ -> globals)
        [] checked.Planp.Typecheck.program
    in
    let folded = Planp_jit.Fold.program checked ~globals in
    print_string
      (Planp.Pretty.program_to_string folded.Planp.Typecheck.program)
  in
  Cmd.v
    (Cmd.info "fold"
       ~doc:"Pretty-print the program after compile-time constant folding")
    Term.(const run $ file_arg)

let bytecode_cmd =
  let run path =
    let checked = checked_of_file path in
    let compiled = Planp_jit.Bytecomp.compile_program checked ~globals:[] in
    Array.iter
      (fun func -> print_endline (Planp_jit.Bytecode.disassemble func))
      compiled.Planp_jit.Bytecomp.unit_.Planp_jit.Bytecode.funcs
  in
  Cmd.v (Cmd.info "bytecode" ~doc:"Dump compiled bytecode")
    Term.(const run $ file_arg)

let time_cmd =
  let run path =
    let source = read_file path in
    let checked = checked_of_file path in
    Printf.printf "%-42s %d lines\n" path (Planp.Ast.line_count source);
    List.iter
      (fun backend ->
        let ms =
          Planp_jit.Backends.codegen_time_ms backend checked ~globals:[]
            ~repeats:50
        in
        Printf.printf "  %-10s %8.3f ms\n"
          backend.Planp_runtime.Backend.backend_name ms)
      (Planp_jit.Backends.all ())
  in
  Cmd.v (Cmd.info "time" ~doc:"Measure code generation time (paper Fig. 3)")
    Term.(const run $ file_arg)

let simulate_cmd =
  let run path packets backend_name =
    let source = read_file path in
    let backend =
      match Planp_jit.Backends.by_name backend_name with
      | Some backend -> backend
      | None ->
          prerr_endline ("planpc: unknown backend " ^ backend_name);
          exit 1
    in
    (* A three-node line; the program runs on the router. *)
    let topo = Extnet.Topology.create () in
    let a = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
    let router = Extnet.Topology.add_host topo "router" "10.0.0.254" in
    let b = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
    ignore (Extnet.Topology.connect topo a router);
    ignore (Extnet.Topology.connect topo router b);
    Extnet.Topology.compute_routes topo;
    (match Extnet.verify_source source with
    | Ok report ->
        Format.printf "--- verification ---@.%a@.@." Extnet.Verifier.pp report
    | Error message -> or_die (Error message));
    (* Authenticated so that rejected-but-interesting programs still run. *)
    let program =
      or_die
        (Extnet.load ~backend ~admission:Extnet.Authenticated router ~source ())
    in
    let tcp_seen = ref 0 and udp_seen = ref 0 in
    Extnet.Node.on_tcp_default b (fun _ _ -> incr tcp_seen);
    Extnet.Node.on_udp_default b (fun _ _ -> incr udp_seen);
    for i = 1 to packets do
      Extnet.Node.send_tcp a ~dst:(Extnet.Node.addr b) ~src_port:(3000 + i)
        ~dst_port:(if i mod 4 = 0 then 8080 else 80)
        (Extnet.Payload.of_string "payload");
      Extnet.Node.send_udp a ~dst:(Extnet.Node.addr b) ~src_port:(4000 + i)
        ~dst_port:(if i mod 3 = 0 then 7 else 53)
        (Extnet.Payload.of_string "payload")
    done;
    Extnet.Topology.run topo;
    (match Extnet.runtime_of router with
    | Some rt ->
        let stats = Extnet.Runtime.stats rt in
        Printf.printf "--- router runtime (%s backend) ---\n" backend_name;
        Printf.printf "packets treated by the program: %d\n"
          stats.Extnet.Runtime.handled;
        Printf.printf "fell through to standard IP:    %d\n"
          stats.Extnet.Runtime.fallthrough;
        Printf.printf "program errors:                 %d\n"
          stats.Extnet.Runtime.errors;
        List.iter
          (fun (name, pkt_type, hits) ->
            Printf.printf "  channel %s (%s): %d packet(s)\n" name pkt_type hits)
          (Extnet.Runtime.channel_hits program);
        let output = Extnet.Runtime.output rt in
        if String.length output > 0 then
          Printf.printf "--- program output ---\n%s\n" output
    | None -> ());
    Printf.printf "--- receiver (bob) ---\ntcp: %d   udp: %d (of %d each sent)\n"
      !tcp_seen !udp_seen packets
  in
  let packets_arg =
    Arg.(value & opt int 20 & info [ "packets"; "n" ] ~doc:"Packets of each kind to inject")
  in
  let backend_arg =
    Arg.(value & opt string "jit" & info [ "backend" ] ~doc:"interp | jit | bytecode")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the program on a simulated router and inject test traffic")
    Term.(const run $ file_arg $ packets_arg $ backend_arg)

(* Shared by [run], [stats] and the empty-policy branch of [adapt]:
   alice --link-- router --segment-- bob with the program on the router
   and a tracer capturing the segment, so every delivered frame also
   lands in the timeline. Deterministic: same source and packet count
   always produce the same registry contents. [policy], when given, must
   be empty — the armed plane schedules nothing ({!Adapt.Policy.is_empty}),
   which is exactly what the golden-parity tests pin down. *)
let run_scenario ?faults_path ?policy ?(domains = 1) ~source ~backend ~packets
    () =
  let topo = Extnet.Topology.create () in
  let a = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
  let router = Extnet.Topology.add_host topo "router" "10.0.0.254" in
  let b = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
  ignore (Extnet.Topology.connect ~name:"uplink" topo a router);
  let segment = Extnet.Topology.segment ~name:"lan" topo () in
  ignore (Extnet.Topology.attach topo segment router);
  ignore (Extnet.Topology.attach topo segment b);
  Extnet.Topology.compute_routes topo;
  (* Scenario target names: link "uplink", segment "lan", nodes "alice",
     "router", "bob". *)
  let scenario =
    Option.map
      (fun path -> or_die (Extnet.Faults.parse_scenario (read_file path)))
      faults_path
  in
  (* With --domains >= 2, shard the topology before faults are armed and
     packets injected: fault targets are pinned into one partition so the
     scenario's RNG draws stay deterministic. *)
  let pin =
    match (scenario, domains) with
    | Some sc, d when d > 1 ->
        or_die
          (Result.map_error
             (fun msg -> "--domains with --faults: " ^ msg)
             (Extnet.Faults.pin_targets topo sc))
    | _ -> []
  in
  let par =
    if domains = 1 then None
    else Some (or_die (Extnet.Par.of_topology ~pin topo ~domains))
  in
  Option.iter
    (fun par ->
      Printf.printf "domains: %d (lookahead %gs)\n" (Extnet.Par.parts par)
        (Extnet.Par.lookahead par))
    par;
  Option.iter
    (fun sc ->
      let engine =
        match (par, pin) with
        | Some par, first :: _ -> Some (Extnet.Par.engine_of par first)
        | _ -> None
      in
      ignore (Extnet.Faults.arm ?engine topo sc))
    scenario;
  let tracer = Extnet.Tracer.on_segment segment () in
  ignore
    (or_die
       (Extnet.load ~backend ~admission:Extnet.Authenticated router ~source ()));
  let tcp_seen = ref 0 and udp_seen = ref 0 in
  Extnet.Node.on_tcp_default b (fun _ _ -> incr tcp_seen);
  Extnet.Node.on_udp_default b (fun _ _ -> incr udp_seen);
  let plane =
    Option.map
      (fun policy ->
        Extnet.Adapt.Plane.arm
          ~engine:(Extnet.Topology.engine topo)
          ~until:0.0 ~signals:[] policy)
      policy
  in
  let start_snapshot = Obs.Registry.snapshot Obs.Registry.default in
  for i = 1 to packets do
    Extnet.Node.send_tcp a ~dst:(Extnet.Node.addr b) ~src_port:(3000 + i)
      ~dst_port:(if i mod 4 = 0 then 8080 else 80)
      (Extnet.Payload.of_string "payload");
    Extnet.Node.send_udp a ~dst:(Extnet.Node.addr b) ~src_port:(4000 + i)
      ~dst_port:(if i mod 3 = 0 then 7 else 53)
      (Extnet.Payload.of_string "payload")
  done;
  (match par with
  | None -> Extnet.Topology.run topo
  | Some par -> Extnet.Par.run par);
  (topo, par, tracer, start_snapshot, plane, !tcp_seen, !udp_seen)

let backend_of_name backend_name =
  match Planp_jit.Backends.by_name backend_name with
  | Some backend -> backend
  | None ->
      prerr_endline ("planpc: unknown backend " ^ backend_name);
      exit 1

let packets_flag =
  Arg.(
    value & opt int 20
    & info [ "packets"; "n" ] ~doc:"Packets of each kind to inject")

let backend_flag =
  Arg.(value & opt string "jit" & info [ "backend" ] ~doc:"interp | jit | bytecode")

let out_flag names doc =
  Arg.(value & opt (some string) None & info names ~docv:"FILE" ~doc)

let faults_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "Arm a fault-injection scenario (link flaps, loss, corruption, \
           congestion, node crashes; see doc/FAULTS.md) on the topology \
           before the run. Targets: link $(b,uplink), segment $(b,lan), \
           nodes $(b,alice), $(b,router), $(b,bob).")

let metrics_out_flag =
  out_flag [ "metrics-out" ] "Write the metrics registry as JSON to $(docv)"

let metrics_csv_flag =
  out_flag [ "metrics-csv" ] "Write the metrics registry as CSV to $(docv)"

let timeline_out_flag =
  out_flag [ "timeline-out" ]
    "Write the merged trace + metrics timeline as JSON to $(docv)"

let export_observability ~topo ~par ~tracer ~start_snapshot ~metrics_out
    ~metrics_csv ~timeline_out =
  let registry = Obs.Registry.default in
  Option.iter
    (fun file ->
      write_file file (Obs.Registry.to_json_string registry);
      Printf.printf "wrote metrics JSON to %s\n" file)
    metrics_out;
  Option.iter
    (fun file ->
      write_file file (Obs.Registry.to_csv_string registry);
      Printf.printf "wrote metrics CSV to %s\n" file)
    metrics_csv;
  Option.iter
    (fun file ->
      (* A partitioned run keeps one clock per domain; [Par.now] is their
         maximum, which equals the sequential engine's final clock. *)
      let now =
        match par with
        | None -> Extnet.Engine.now (Extnet.Topology.engine topo)
        | Some par -> Extnet.Par.now par
      in
      let events =
        Obs.Timeline.merge
          [
            [ Obs.Timeline.of_snapshot ~at:0.0 start_snapshot ];
            Extnet.Tracer.to_events tracer;
            [ Obs.Timeline.of_snapshot ~at:now (Obs.Registry.snapshot registry) ];
          ]
      in
      write_file file (Obs.Timeline.to_json_string events);
      Printf.printf "wrote timeline (%d event(s)) to %s\n" (List.length events)
        file)
    timeline_out

(* The body of [run]; [adapt] with an empty policy takes this exact code
   path (plus the inert armed plane), so its exports are byte-identical. *)
let run_plain ?policy ?domains path packets backend_name metrics_out
    metrics_csv timeline_out faults_path =
  let backend = backend_of_name backend_name in
  let topo, par, tracer, start_snapshot, plane, tcp_seen, udp_seen =
    run_scenario ?faults_path ?policy ?domains ~source:(read_file path)
      ~backend ~packets ()
  in
  Printf.printf "--- run (%s backend) ---\n" backend_name;
  Printf.printf "receiver (bob): tcp %d   udp %d (of %d each sent)\n" tcp_seen
    udp_seen packets;
  Printf.printf "tracer: %d frame(s) captured, %d evicted\n"
    (Extnet.Tracer.count tracer)
    (Extnet.Tracer.dropped tracer);
  Option.iter
    (fun plane ->
      let stats = Extnet.Adapt.Plane.stats plane in
      Printf.printf
        "adaptation: empty policy armed, %d tick(s), %d firing(s) (inert)\n"
        stats.Extnet.Adapt.Plane.st_ticks stats.Extnet.Adapt.Plane.st_fired)
    plane;
  export_observability ~topo ~par ~tracer ~start_snapshot ~metrics_out
    ~metrics_csv ~timeline_out

let domains_flag =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard the topology across $(docv) OCaml domains (deterministic \
           conservative parallel simulation). $(docv)=1 (the default) is \
           the plain sequential engine; results are identical either way.")

let no_flowcache_flag =
  Arg.(
    value & flag
    & info [ "no-flowcache" ]
        ~doc:
          "Disable the flow-keyed decision cache and execute every packet \
           through the backend. Exports are byte-identical either way; the \
           flag exists to demonstrate that and to isolate the cache when \
           profiling.")

let run_cmd =
  let run path packets backend_name domains no_flowcache metrics_out
      metrics_csv timeline_out faults_path =
    if domains < 1 then begin
      prerr_endline "planpc: --domains must be >= 1";
      exit 1
    end;
    if no_flowcache then Planp_runtime.Flowcache.set_enabled false;
    run_plain ~domains path packets backend_name metrics_out metrics_csv
      timeline_out faults_path
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the program on a traced topology and export observability data")
    Term.(
      const run $ file_arg $ packets_flag $ backend_flag $ domains_flag
      $ no_flowcache_flag $ metrics_out_flag $ metrics_csv_flag
      $ timeline_out_flag $ faults_flag)

let stats_cmd =
  let run path packets backend_name =
    let backend = backend_of_name backend_name in
    let _topo, _par, _tracer, _start, _plane, _tcp, _udp =
      run_scenario ~source:(read_file path) ~backend ~packets ()
    in
    Obs.Registry.pp Format.std_formatter Obs.Registry.default;
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the program on a traced topology and print every metric")
    Term.(const run $ file_arg $ packets_flag $ backend_flag)

(* --- the deployment plane demo: ctrl —uplink— router —segment— targets.
   Each invocation simulates its own network; [deploy] ships the program
   in-band to every target's deploy daemon, [undeploy] retires it again
   afterwards. --flap cuts the uplink mid-transfer to show the transfer
   surviving on retransmissions. *)

let deploy_topology ~targets =
  let topo = Extnet.Topology.create () in
  let ctrl = Extnet.Topology.add_host topo "ctrl" "10.9.0.1" in
  let router = Extnet.Topology.add_host topo "router" "10.9.0.254" in
  let uplink = Extnet.Topology.connect ~name:"uplink" topo ctrl router in
  let segment = Extnet.Topology.segment ~name:"lan" topo () in
  ignore (Extnet.Topology.attach topo segment router);
  let nodes =
    List.init targets (fun i ->
        let node =
          Extnet.Topology.add_host topo
            (Printf.sprintf "target%d" i)
            (Printf.sprintf "10.9.1.%d" (i + 1))
        in
        ignore (Extnet.Topology.attach topo segment node);
        node)
  in
  Extnet.Topology.compute_routes topo;
  (topo, ctrl, uplink, nodes)

let print_deploy_metrics () =
  print_endline "--- deployment metrics ---";
  List.iter
    (fun entry ->
      let name = entry.Obs.Registry.e_name in
      if String.length name >= 7 && String.sub name 0 7 = "deploy." then
        let label =
          Printf.sprintf "%s{%s}" name
            (Obs.Registry.labels_to_string entry.Obs.Registry.e_labels)
        in
        match entry.Obs.Registry.e_sample with
        | Obs.Registry.Scounter n -> Printf.printf "  %-64s %d\n" label n
        | Obs.Registry.Sgauge v -> Printf.printf "  %-64s %g\n" label v
        | Obs.Registry.Shistogram { hs_count; hs_sum; _ } ->
            Printf.printf "  %-64s count=%d sum=%g\n" label hs_count hs_sum)
    (Obs.Registry.snapshot Obs.Registry.default)

let name_of_target nodes addr =
  match
    List.find_opt (fun node -> Extnet.Node.addr node = addr) nodes
  with
  | Some node -> Extnet.Node.name node
  | None -> Extnet.Addr.to_string addr

let print_outcomes nodes outcomes =
  List.iter
    (fun (addr, outcome) ->
      Printf.printf "  %-10s %s\n" (name_of_target nodes addr)
        (Extnet.Deploy.Controller.outcome_to_string outcome))
    outcomes

let all_acked outcomes =
  List.for_all
    (fun (_, outcome) ->
      match outcome with Extnet.Deploy.Controller.Acked _ -> true | _ -> false)
    outcomes

(* Every non-ACK outcome, with its reason, on stderr — so scripted
   callers see why the nonzero exit happened (NAK reason, timeout,
   exhausted retry budget). *)
let print_failures nodes outcomes =
  List.iter
    (fun (addr, outcome) ->
      match outcome with
      | Extnet.Deploy.Controller.Acked _ -> ()
      | outcome ->
          Printf.eprintf "planpc: deploy failed on %s: %s\n"
            (name_of_target nodes addr)
            (Extnet.Deploy.Controller.outcome_to_string outcome))
    outcomes

let targets_flag =
  Arg.(value & opt int 3 & info [ "targets" ] ~doc:"Number of target nodes")

let flap_flag =
  Arg.(
    value & flag
    & info [ "flap" ]
        ~doc:"Cut the controller's uplink mid-transfer and heal it at t=1s")

let name_flag =
  Arg.(
    value & opt string "asp"
    & info [ "name" ] ~doc:"Program (slot) name on the daemons")

let chunk_flag =
  Arg.(value & opt int 512 & info [ "chunk-size" ] ~doc:"Capsule payload bytes")

let concurrency_flag =
  Arg.(
    value & opt int 2
    & info [ "concurrency" ] ~doc:"Concurrent transfers during the rollout")

let abort_flag =
  Arg.(
    value & flag
    & info [ "abort-on-nak" ]
        ~doc:"Stop the rollout at the first NAK (untried targets are skipped)")

let authenticated_flag =
  Arg.(
    value & flag
    & info [ "authenticated" ]
        ~doc:"Privileged path: daemons install without verification")

let retry_budget_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "retry-budget" ] ~docv:"N"
        ~doc:
          "Consecutive barren retransmission timeouts tolerated per \
           capsule stream before the target is declared unreachable and \
           pending operations settle $(b,aborted) (default: retry \
           forever)")

let run_deployment ~source ~backend_name ~name ~targets ~flap ~chunk_size
    ~concurrency ~abort ~authenticated ~retry_budget =
  ignore (backend_of_name backend_name);
  let topo, ctrl, uplink, nodes = deploy_topology ~targets in
  let daemons =
    List.map (fun node -> Extnet.Deploy.Daemon.start node ()) nodes
  in
  let controller =
    Extnet.Deploy.Controller.create ?retry_budget ~chunk_size ctrl ()
  in
  let engine = Extnet.Topology.engine topo in
  if flap then begin
    Extnet.Engine.schedule engine ~at:0.0015 (fun () ->
        Netsim.Link.set_up uplink false);
    Extnet.Engine.schedule engine ~at:1.0 (fun () ->
        Netsim.Link.set_up uplink true)
  end;
  let outcomes = ref None in
  Extnet.Deploy.Controller.rollout controller ~backend:backend_name
    ~authenticated ~concurrency
    ~on_nak:
      (if abort then Extnet.Deploy.Controller.Abort
       else Extnet.Deploy.Controller.Continue)
    ~targets:(List.map Extnet.Node.addr nodes)
    ~name ~source
    ~on_done:(fun results -> outcomes := Some results)
    ();
  Extnet.Topology.run_until topo ~stop:120.0;
  let outcomes =
    match !outcomes with
    | Some outcomes -> outcomes
    | None ->
        prerr_endline "planpc: rollout never completed";
        exit 1
  in
  (topo, controller, nodes, daemons, outcomes)

let deploy_cmd =
  let run path backend_name name targets flap chunk_size concurrency abort
      authenticated retry_budget =
    let _topo, _controller, nodes, daemons, outcomes =
      run_deployment ~source:(read_file path) ~backend_name ~name ~targets
        ~flap ~chunk_size ~concurrency ~abort ~authenticated ~retry_budget
    in
    Printf.printf "--- rollout of %s as %S to %d node(s) ---\n" path name
      targets;
    print_outcomes nodes outcomes;
    print_endline "--- daemon slots ---";
    List.iter
      (fun daemon ->
        Printf.printf "  %-10s %s\n"
          (Extnet.Node.name (Extnet.Deploy.Daemon.node daemon))
          (match Extnet.Deploy.Daemon.slots daemon with
          | [] -> "(empty)"
          | slots ->
              String.concat ", "
                (List.map
                   (fun (slot, epoch) -> Printf.sprintf "%s@%d" slot epoch)
                   slots)))
      daemons;
    print_deploy_metrics ();
    if not (all_acked outcomes) then begin
      print_failures nodes outcomes;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:
         "Ship the program in-band to deploy daemons over a simulated \
          topology (staged rollout; daemons verify before activating)")
    Term.(
      const run $ file_arg $ backend_flag $ name_flag $ targets_flag
      $ flap_flag $ chunk_flag $ concurrency_flag $ abort_flag
      $ authenticated_flag $ retry_budget_flag)

let undeploy_cmd =
  let run path backend_name name targets flap chunk_size concurrency abort
      authenticated retry_budget =
    let topo, controller, nodes, daemons, outcomes =
      run_deployment ~source:(read_file path) ~backend_name ~name ~targets
        ~flap ~chunk_size ~concurrency ~abort ~authenticated ~retry_budget
    in
    Printf.printf "--- deploy phase (%S to %d node(s)) ---\n" name targets;
    print_outcomes nodes outcomes;
    let retired = ref [] in
    List.iter
      (fun node ->
        Extnet.Deploy.Controller.undeploy controller
          ~target:(Extnet.Node.addr node) ~name
          ~on_done:(fun outcome ->
            retired := (Extnet.Node.addr node, outcome) :: !retired)
          ())
      nodes;
    Extnet.Topology.run_until topo ~stop:240.0;
    print_endline "--- undeploy phase ---";
    print_outcomes nodes (List.rev !retired);
    List.iter
      (fun daemon ->
        Printf.printf "  %-10s slot %S %s\n"
          (Extnet.Node.name (Extnet.Deploy.Daemon.node daemon))
          name
          (match
             ( Extnet.Deploy.Daemon.active_epoch daemon ~name,
               Extnet.Deploy.Daemon.previous_epoch daemon ~name )
           with
          | None, Some epoch ->
              Printf.sprintf "retired (epoch %d kept for rollback)" epoch
          | None, None -> "empty"
          | Some epoch, _ -> Printf.sprintf "STILL ACTIVE at epoch %d" epoch))
      daemons;
    print_deploy_metrics ();
    if not (all_acked outcomes && all_acked !retired) then begin
      print_failures nodes outcomes;
      print_failures nodes (List.rev !retired);
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "undeploy"
       ~doc:
         "Deploy the program in-band, then retire it from every daemon \
          (the previous epoch stays available for rollback)")
    Term.(
      const run $ file_arg $ backend_flag $ name_flag $ targets_flag
      $ flap_flag $ chunk_flag $ concurrency_flag $ abort_flag
      $ authenticated_flag $ retry_budget_flag)

(* --- the closed-loop adaptation demo: the [run] topology, but the
   program is shipped in-band (daemon on the router, controller on
   alice), traffic is paced over [--duration] so the monitors see rates,
   and an [Adapt.Plane] armed from [--policy] can hot-swap the router's
   program to any [--variant NAME=FILE] source as a fresh epoch. Wired
   signals: [drop_rate] (lan-segment drops/s) and [goodput] (packets/s
   delivered at bob). An empty policy file falls back to the exact [run]
   code path, so its exports are byte-identical to [planpc run]. *)

let policy_flag =
  Arg.(
    required
    & opt (some file) None
    & info [ "policy" ] ~docv:"FILE"
        ~doc:
          "Adaptation policy (format: doc/ADAPTATION.md). Rules may test \
           the wired signals $(b,drop_rate) and $(b,goodput); swap and \
           undeploy actions target the router's program slot (see \
           $(b,--name)) with the variants named by $(b,--variant), plus \
           $(b,default) for FILE itself.")

let variant_flag =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string file) []
    & info [ "variant" ] ~docv:"NAME=FILE"
        ~doc:
          "A PLAN-P source the policy's swap actions may deploy \
           (repeatable). The initially-deployed FILE is variant \
           $(b,default).")

let duration_flag =
  Arg.(
    value & opt float 20.0
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:
          "Simulated run length; $(b,--packets) of each kind are \
           injected every second until then")

let targets_flag =
  Arg.(
    value & opt int 1
    & info [ "targets" ] ~docv:"N"
        ~doc:
          "Chain $(docv) routers between alice and the lan segment \
           ($(b,router0) .. $(b,routerN-1), joined by $(b,relay) links), \
           all running the program; swap and undeploy actions reach the \
           whole fleet through one staged rollout. $(docv)=1 (the \
           default) is the classic single $(b,router).")

let adapt_cmd =
  let run path policy_path packets backend_name name chunk_size authenticated
      duration variants domains targets metrics_out metrics_csv timeline_out
      faults_path =
    ignore (backend_of_name backend_name);
    if domains < 1 then begin
      prerr_endline "planpc: --domains must be >= 1";
      exit 1
    end;
    if targets < 1 then begin
      prerr_endline "planpc: --targets must be >= 1";
      exit 1
    end;
    let policy =
      match Extnet.Adapt.Policy.parse (read_file policy_path) with
      | Ok policy -> policy
      | Error message ->
          prerr_endline
            (Printf.sprintf "planpc: %s: %s" policy_path message);
          exit 1
    in
    if Extnet.Adapt.Policy.is_empty policy then begin
      Printf.printf "policy %s is empty: plain traced run\n" policy_path;
      run_plain ~policy ~domains path packets backend_name metrics_out
        metrics_csv timeline_out faults_path
    end
    else begin
      let source = read_file path in
      let variant_sources =
        List.map (fun (vname, vpath) -> (vname, read_file vpath)) variants
      in
      let topo = Extnet.Topology.create () in
      let a = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
      (* --targets 1 keeps the classic alice--router--lan names (the
         golden-parity baseline); a fleet chains relay routers that all
         run the program, so a swap must restage every hop. *)
      let routers =
        if targets = 1 then
          [ Extnet.Topology.add_host topo "router" "10.0.0.254" ]
        else
          List.init targets (fun i ->
              Extnet.Topology.add_host topo
                (Printf.sprintf "router%d" i)
                (Printf.sprintf "10.0.%d.254" i))
      in
      let b = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
      ignore
        (Extnet.Topology.connect ~name:"uplink" topo a (List.hd routers));
      List.iteri
        (fun i r ->
          if i > 0 then
            ignore
              (Extnet.Topology.connect
                 ~name:(Printf.sprintf "relay%d" (i - 1))
                 topo
                 (List.nth routers (i - 1))
                 r))
        routers;
      let segment = Extnet.Topology.segment ~name:"lan" topo () in
      ignore
        (Extnet.Topology.attach topo segment (List.nth routers (targets - 1)));
      ignore (Extnet.Topology.attach topo segment b);
      Extnet.Topology.compute_routes topo;
      let scenario =
        Option.map
          (fun fpath -> or_die (Extnet.Faults.parse_scenario (read_file fpath)))
          faults_path
      in
      (* As in [run]: shard before faults are armed or any event lands,
         pinning fault targets into one partition. *)
      let pin =
        match (scenario, domains) with
        | Some sc, d when d > 1 ->
            or_die
              (Result.map_error
                 (fun msg -> "--domains with --faults: " ^ msg)
                 (Extnet.Faults.pin_targets topo sc))
        | _ -> []
      in
      (* Unlike [run], a single-domain adapt still goes through a
         parts=1 partitioned driver: monitor ticks then ride the same
         window-barrier pacers for every --domains count, which is what
         makes the exports byte-identical between --domains 1 and
         --domains N (engine-scheduled ticks would count as extra
         engine events in the sequential run only). *)
      let par = Some (or_die (Extnet.Par.of_topology ~pin topo ~domains)) in
      Option.iter
        (fun par ->
          if Extnet.Par.parts par > 1 then
            Printf.printf "domains: %d (lookahead %gs)\n"
              (Extnet.Par.parts par) (Extnet.Par.lookahead par))
        par;
      Option.iter
        (fun sc ->
          let engine =
            match (par, pin) with
            | Some par, first :: _ -> Some (Extnet.Par.engine_of par first)
            | _ -> None
          in
          ignore (Extnet.Faults.arm ?engine topo sc))
        scenario;
      let tracer = Extnet.Tracer.on_segment segment () in
      let engine = Extnet.Topology.engine topo in
      let daemons =
        List.map (fun r -> (r, Extnet.Deploy.Daemon.start r ())) routers
      in
      let controller = Extnet.Deploy.Controller.create ~chunk_size a () in
      let tcp_seen = ref 0 and udp_seen = ref 0 in
      Extnet.Node.on_tcp_default b (fun _ _ -> incr tcp_seen);
      Extnet.Node.on_udp_default b (fun _ _ -> incr udp_seen);
      let start_snapshot = Obs.Registry.snapshot Obs.Registry.default in
      let router_addrs = List.map Extnet.Node.addr routers in
      let initial = ref None in
      (match router_addrs with
      | [ target ] ->
          Extnet.Deploy.Controller.deploy controller ~backend:backend_name
            ~authenticated ~target ~name ~source
            ~on_done:(fun outcome -> initial := Some outcome)
            ()
      | _ ->
          Extnet.Deploy.Controller.rollout controller ~backend:backend_name
            ~authenticated ~concurrency:2
            ~on_nak:Extnet.Deploy.Controller.Abort ~targets:router_addrs
            ~name ~source
            ~on_done:(fun outcomes ->
              (* Worst outcome stands for the fleet: the run only
                 proceeds usefully when every hop acked. *)
              let worst =
                List.find_opt
                  (fun (_, o) ->
                    match o with
                    | Extnet.Deploy.Controller.Acked _ -> false
                    | _ -> true)
                  outcomes
              in
              initial :=
                Some
                  (match (worst, outcomes) with
                  | Some (_, o), _ -> o
                  | None, (_, o) :: _ -> o
                  | None, [] -> Extnet.Deploy.Controller.Timed_out))
            ());
      let inj_engine =
        match par with
        | Some par -> Extnet.Par.engine_of par a
        | None -> engine
      in
      for second = 0 to int_of_float (Float.round duration) - 1 do
        Extnet.Engine.schedule inj_engine ~at:(float_of_int second) (fun () ->
            for i = 1 to packets do
              Extnet.Node.send_tcp a ~dst:(Extnet.Node.addr b)
                ~src_port:(3000 + i)
                ~dst_port:(if i mod 4 = 0 then 8080 else 80)
                (Extnet.Payload.of_string "payload");
              Extnet.Node.send_udp a ~dst:(Extnet.Node.addr b)
                ~src_port:(4000 + i)
                ~dst_port:(if i mod 3 = 0 then 7 else 53)
                (Extnet.Payload.of_string "payload")
            done)
      done;
      let env =
        {
          Extnet.Adapt.Plane.de_controller = controller;
          de_backend = backend_name;
          de_targets_of =
            (fun program -> if program = name then router_addrs else []);
          de_variant_of =
            (fun ~program ~variant ->
              if program <> name then None
              else if variant = "default" then
                Some
                  {
                    Extnet.Adapt.Plane.v_source = source;
                    v_authenticated = authenticated;
                  }
              else
                Option.map
                  (fun v_source ->
                    {
                      Extnet.Adapt.Plane.v_source;
                      v_authenticated = authenticated;
                    })
                  (List.assoc_opt variant variant_sources));
          de_concurrency = 2;
          de_nak_policy = Extnet.Deploy.Controller.Abort;
          de_nak_quarantine = 3;
        }
      in
      let plane =
        try
          Extnet.Adapt.Plane.arm ~env ?par
            ~active:[ (name, "default") ]
            ~engine ~until:duration
            ~signals:
              [
                ( "drop_rate",
                  Extnet.Adapt.Monitor.Counter_rate
                    (Obs.Registry.counter
                       ~labels:[ ("segment", "lan") ]
                       ~help:"frames dropped (full queue)"
                       "netsim.segment.drops") );
                ( "goodput",
                  Extnet.Adapt.Monitor.Rate_of
                    (fun () -> float_of_int (!tcp_seen + !udp_seen)) );
              ]
            policy
        with Invalid_argument message ->
          prerr_endline ("planpc: " ^ message);
          exit 1
      in
      (match par with
      | None -> Extnet.Topology.run_until topo ~stop:duration
      | Some par -> Extnet.Par.run_until par ~stop:duration);
      Printf.printf "--- adapt (%s backend, policy %s) ---\n" backend_name
        policy_path;
      let initial = !initial in
      Printf.printf "initial in-band deploy of %S to %s: %s\n" name
        (if targets = 1 then "router"
         else Printf.sprintf "%d routers" targets)
        (match initial with
        | Some outcome -> Extnet.Deploy.Controller.outcome_to_string outcome
        | None -> "still in flight");
      Printf.printf "receiver (bob): tcp %d   udp %d (of %d/s each for %gs)\n"
        !tcp_seen !udp_seen packets duration;
      Printf.printf "tracer: %d frame(s) captured, %d evicted\n"
        (Extnet.Tracer.count tracer)
        (Extnet.Tracer.dropped tracer);
      let stats = Extnet.Adapt.Plane.stats plane in
      Printf.printf
        "plane: %d tick(s), %d firing(s), %d swap(s) (%d failed), %d \
         undeploy(s), %d guard check(s), %d rollback(s)\n"
        stats.Extnet.Adapt.Plane.st_ticks stats.Extnet.Adapt.Plane.st_fired
        stats.Extnet.Adapt.Plane.st_swaps
        stats.Extnet.Adapt.Plane.st_failed_swaps
        stats.Extnet.Adapt.Plane.st_undeploys
        stats.Extnet.Adapt.Plane.st_guard_checks
        stats.Extnet.Adapt.Plane.st_rollbacks;
      List.iter
        (fun event ->
          Printf.printf "  [%8.3fs] %-12s %-28s %s\n"
            event.Extnet.Adapt.Plane.ev_at event.Extnet.Adapt.Plane.ev_rule
            event.Extnet.Adapt.Plane.ev_what event.Extnet.Adapt.Plane.ev_note)
        stats.Extnet.Adapt.Plane.st_events;
      Printf.printf "active variant of %S: %s\n" name
        (Option.value ~default:"(none)"
           (Extnet.Adapt.Plane.active_variant plane name));
      List.iter
        (fun (r, daemon) ->
          Printf.printf "%s slots: %s\n" (Extnet.Node.name r)
            (match Extnet.Deploy.Daemon.slots daemon with
            | [] -> "(empty)"
            | slots ->
                String.concat ", "
                  (List.map
                     (fun (slot, epoch) -> Printf.sprintf "%s@%d" slot epoch)
                     slots)))
        daemons;
      export_observability ~topo ~par ~tracer ~start_snapshot ~metrics_out
        ~metrics_csv ~timeline_out;
      match initial with
      | Some (Extnet.Deploy.Controller.Acked _) -> ()
      | Some outcome ->
          Printf.eprintf "planpc: initial deploy failed: %s\n"
            (Extnet.Deploy.Controller.outcome_to_string outcome);
          exit 2
      | None ->
          prerr_endline "planpc: initial deploy never completed";
          exit 2
    end
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Run the program under a closed-loop adaptation policy: in-band \
          deploy, condition monitors, guarded hot-swaps to $(b,--variant) \
          sources across the $(b,--targets) router fleet, optionally \
          sharded over $(b,--domains) OCaml domains")
    Term.(
      const run $ file_arg $ policy_flag $ packets_flag $ backend_flag
      $ name_flag $ chunk_flag $ authenticated_flag $ duration_flag
      $ variant_flag $ domains_flag $ targets_flag $ metrics_out_flag
      $ metrics_csv_flag $ timeline_out_flag $ faults_flag)

let prims_cmd =
  let run () =
    Planp_runtime.Prims.install ();
    List.iter print_endline (Planp_runtime.Prim.names ())
  in
  Cmd.v (Cmd.info "prims" ~doc:"List registered primitives")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "planpc" ~version:"1.0"
       ~doc:"PLAN-P checker, verifier and compiler driver")
    [ check_cmd; verify_cmd; ast_cmd; fold_cmd; bytecode_cmd; time_cmd;
      simulate_cmd; run_cmd; stats_cmd; deploy_cmd; undeploy_cmd; adapt_cmd;
      prims_cmd ]

let () = exit (Cmd.eval main)
