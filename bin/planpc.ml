(* planpc — the PLAN-P program checker and compiler driver.

   Subcommands:
     check  FILE     parse + type check
     verify FILE     run the safety analyses (paper 2.1)
     ast    FILE     dump the parsed program (pretty-printed PLAN-P)
     bytecode FILE   dump the compiled bytecode
     time   FILE     measure code-generation time per backend (Fig. 3)
     run    FILE     run on a traced topology, export metrics/timeline
     stats  FILE     run and print the metrics registry
     prims           list registered primitives *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let write_file path contents =
  match open_out_bin path with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error message ->
      prerr_endline ("planpc: " ^ message);
      exit 1

let or_die = function
  | Ok value -> value
  | Error message ->
      prerr_endline ("planpc: " ^ message);
      exit 1

let checked_of_file path =
  Planp_runtime.Prims.install ();
  or_die (Extnet.check_source (read_file path))

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PLAN-P source file")

let check_cmd =
  let run path =
    let checked = checked_of_file path in
    let chans = Planp.Ast.channels checked.Planp.Typecheck.program in
    Printf.printf "%s: OK (%d lines, %d channel(s), protocol state %s)\n" path
      (Planp.Ast.line_count (read_file path))
      (List.length chans)
      (Planp.Ptype.to_string checked.Planp.Typecheck.proto_type)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type check a PLAN-P program")
    Term.(const run $ file_arg)

let verify_cmd =
  let run path =
    let checked = checked_of_file path in
    let report = Planp_analysis.Verifier.verify checked.Planp.Typecheck.program in
    Format.printf "%a@." Planp_analysis.Verifier.pp report;
    if not (Planp_analysis.Verifier.passes report) then exit 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the safety analyses: termination, delivery, duplication")
    Term.(const run $ file_arg)

let ast_cmd =
  let run path =
    let checked = checked_of_file path in
    print_string (Planp.Pretty.program_to_string checked.Planp.Typecheck.program)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Pretty-print the parsed program")
    Term.(const run $ file_arg)

let fold_cmd =
  let run path =
    let checked = checked_of_file path in
    (* Evaluate the globals so folding can inline them, like the backends. *)
    let world, _, _ = Planp_runtime.World.dummy () in
    let globals =
      List.fold_left
        (fun globals decl ->
          match decl with
          | Planp.Ast.Dval ({ Planp.Ast.bind_name; bind_expr; _ }, _) ->
              globals
              @ [ (bind_name,
                   Planp_runtime.Interp.eval_const ~world ~globals bind_expr) ]
          | _ -> globals)
        [] checked.Planp.Typecheck.program
    in
    let folded = Planp_jit.Fold.program checked ~globals in
    print_string
      (Planp.Pretty.program_to_string folded.Planp.Typecheck.program)
  in
  Cmd.v
    (Cmd.info "fold"
       ~doc:"Pretty-print the program after compile-time constant folding")
    Term.(const run $ file_arg)

let bytecode_cmd =
  let run path =
    let checked = checked_of_file path in
    let compiled = Planp_jit.Bytecomp.compile_program checked ~globals:[] in
    Array.iter
      (fun func -> print_endline (Planp_jit.Bytecode.disassemble func))
      compiled.Planp_jit.Bytecomp.unit_.Planp_jit.Bytecode.funcs
  in
  Cmd.v (Cmd.info "bytecode" ~doc:"Dump compiled bytecode")
    Term.(const run $ file_arg)

let time_cmd =
  let run path =
    let source = read_file path in
    let checked = checked_of_file path in
    Printf.printf "%-42s %d lines\n" path (Planp.Ast.line_count source);
    List.iter
      (fun backend ->
        let ms =
          Planp_jit.Backends.codegen_time_ms backend checked ~globals:[]
            ~repeats:50
        in
        Printf.printf "  %-10s %8.3f ms\n"
          backend.Planp_runtime.Backend.backend_name ms)
      (Planp_jit.Backends.all ())
  in
  Cmd.v (Cmd.info "time" ~doc:"Measure code generation time (paper Fig. 3)")
    Term.(const run $ file_arg)

let simulate_cmd =
  let run path packets backend_name =
    let source = read_file path in
    let backend =
      match Planp_jit.Backends.by_name backend_name with
      | Some backend -> backend
      | None ->
          prerr_endline ("planpc: unknown backend " ^ backend_name);
          exit 1
    in
    (* A three-node line; the program runs on the router. *)
    let topo = Extnet.Topology.create () in
    let a = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
    let router = Extnet.Topology.add_host topo "router" "10.0.0.254" in
    let b = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
    ignore (Extnet.Topology.connect topo a router);
    ignore (Extnet.Topology.connect topo router b);
    Extnet.Topology.compute_routes topo;
    (match Extnet.verify_source source with
    | Ok report ->
        Format.printf "--- verification ---@.%a@.@." Extnet.Verifier.pp report
    | Error message -> or_die (Error message));
    (* Authenticated so that rejected-but-interesting programs still run. *)
    let program =
      or_die
        (Extnet.load ~backend ~admission:Extnet.Authenticated router ~source ())
    in
    let tcp_seen = ref 0 and udp_seen = ref 0 in
    Extnet.Node.on_tcp_default b (fun _ _ -> incr tcp_seen);
    Extnet.Node.on_udp_default b (fun _ _ -> incr udp_seen);
    for i = 1 to packets do
      Extnet.Node.send_tcp a ~dst:(Extnet.Node.addr b) ~src_port:(3000 + i)
        ~dst_port:(if i mod 4 = 0 then 8080 else 80)
        (Extnet.Payload.of_string "payload");
      Extnet.Node.send_udp a ~dst:(Extnet.Node.addr b) ~src_port:(4000 + i)
        ~dst_port:(if i mod 3 = 0 then 7 else 53)
        (Extnet.Payload.of_string "payload")
    done;
    Extnet.Topology.run topo;
    (match Extnet.runtime_of router with
    | Some rt ->
        let stats = Extnet.Runtime.stats rt in
        Printf.printf "--- router runtime (%s backend) ---\n" backend_name;
        Printf.printf "packets treated by the program: %d\n"
          stats.Extnet.Runtime.handled;
        Printf.printf "fell through to standard IP:    %d\n"
          stats.Extnet.Runtime.fallthrough;
        Printf.printf "program errors:                 %d\n"
          stats.Extnet.Runtime.errors;
        List.iter
          (fun (name, pkt_type, hits) ->
            Printf.printf "  channel %s (%s): %d packet(s)\n" name pkt_type hits)
          (Extnet.Runtime.channel_hits program);
        let output = Extnet.Runtime.output rt in
        if String.length output > 0 then
          Printf.printf "--- program output ---\n%s\n" output
    | None -> ());
    Printf.printf "--- receiver (bob) ---\ntcp: %d   udp: %d (of %d each sent)\n"
      !tcp_seen !udp_seen packets
  in
  let packets_arg =
    Arg.(value & opt int 20 & info [ "packets"; "n" ] ~doc:"Packets of each kind to inject")
  in
  let backend_arg =
    Arg.(value & opt string "jit" & info [ "backend" ] ~doc:"interp | jit | bytecode")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the program on a simulated router and inject test traffic")
    Term.(const run $ file_arg $ packets_arg $ backend_arg)

(* Shared by [run] and [stats]: alice --link-- router --segment-- bob with
   the program on the router and a tracer capturing the segment, so every
   delivered frame also lands in the timeline. Deterministic: same source
   and packet count always produce the same registry contents. *)
let run_scenario ~source ~backend ~packets =
  let topo = Extnet.Topology.create () in
  let a = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
  let router = Extnet.Topology.add_host topo "router" "10.0.0.254" in
  let b = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
  ignore (Extnet.Topology.connect ~name:"uplink" topo a router);
  let segment = Extnet.Topology.segment ~name:"lan" topo () in
  ignore (Extnet.Topology.attach topo segment router);
  ignore (Extnet.Topology.attach topo segment b);
  Extnet.Topology.compute_routes topo;
  let tracer = Extnet.Tracer.on_segment segment () in
  ignore
    (or_die
       (Extnet.load ~backend ~admission:Extnet.Authenticated router ~source ()));
  let tcp_seen = ref 0 and udp_seen = ref 0 in
  Extnet.Node.on_tcp_default b (fun _ _ -> incr tcp_seen);
  Extnet.Node.on_udp_default b (fun _ _ -> incr udp_seen);
  let start_snapshot = Obs.Registry.snapshot Obs.Registry.default in
  for i = 1 to packets do
    Extnet.Node.send_tcp a ~dst:(Extnet.Node.addr b) ~src_port:(3000 + i)
      ~dst_port:(if i mod 4 = 0 then 8080 else 80)
      (Extnet.Payload.of_string "payload");
    Extnet.Node.send_udp a ~dst:(Extnet.Node.addr b) ~src_port:(4000 + i)
      ~dst_port:(if i mod 3 = 0 then 7 else 53)
      (Extnet.Payload.of_string "payload")
  done;
  Extnet.Topology.run topo;
  (topo, tracer, start_snapshot, !tcp_seen, !udp_seen)

let backend_of_name backend_name =
  match Planp_jit.Backends.by_name backend_name with
  | Some backend -> backend
  | None ->
      prerr_endline ("planpc: unknown backend " ^ backend_name);
      exit 1

let packets_flag =
  Arg.(
    value & opt int 20
    & info [ "packets"; "n" ] ~doc:"Packets of each kind to inject")

let backend_flag =
  Arg.(value & opt string "jit" & info [ "backend" ] ~doc:"interp | jit | bytecode")

let out_flag names doc =
  Arg.(value & opt (some string) None & info names ~docv:"FILE" ~doc)

let run_cmd =
  let run path packets backend_name metrics_out metrics_csv timeline_out =
    let backend = backend_of_name backend_name in
    let topo, tracer, start_snapshot, tcp_seen, udp_seen =
      run_scenario ~source:(read_file path) ~backend ~packets
    in
    Printf.printf "--- run (%s backend) ---\n" backend_name;
    Printf.printf "receiver (bob): tcp %d   udp %d (of %d each sent)\n" tcp_seen
      udp_seen packets;
    Printf.printf "tracer: %d frame(s) captured, %d evicted\n"
      (Extnet.Tracer.count tracer)
      (Extnet.Tracer.dropped tracer);
    let registry = Obs.Registry.default in
    Option.iter
      (fun file ->
        write_file file (Obs.Registry.to_json_string registry);
        Printf.printf "wrote metrics JSON to %s\n" file)
      metrics_out;
    Option.iter
      (fun file ->
        write_file file (Obs.Registry.to_csv_string registry);
        Printf.printf "wrote metrics CSV to %s\n" file)
      metrics_csv;
    Option.iter
      (fun file ->
        let now = Extnet.Engine.now (Extnet.Topology.engine topo) in
        let events =
          Obs.Timeline.merge
            [
              [ Obs.Timeline.of_snapshot ~at:0.0 start_snapshot ];
              Extnet.Tracer.to_events tracer;
              [ Obs.Timeline.of_snapshot ~at:now (Obs.Registry.snapshot registry) ];
            ]
        in
        write_file file (Obs.Timeline.to_json_string events);
        Printf.printf "wrote timeline (%d event(s)) to %s\n" (List.length events)
          file)
      timeline_out
  in
  let metrics_out = out_flag [ "metrics-out" ] "Write the metrics registry as JSON to $(docv)" in
  let metrics_csv = out_flag [ "metrics-csv" ] "Write the metrics registry as CSV to $(docv)" in
  let timeline_out =
    out_flag [ "timeline-out" ]
      "Write the merged trace + metrics timeline as JSON to $(docv)"
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the program on a traced topology and export observability data")
    Term.(
      const run $ file_arg $ packets_flag $ backend_flag $ metrics_out
      $ metrics_csv $ timeline_out)

let stats_cmd =
  let run path packets backend_name =
    let backend = backend_of_name backend_name in
    let _topo, _tracer, _start, _tcp, _udp =
      run_scenario ~source:(read_file path) ~backend ~packets
    in
    Obs.Registry.pp Format.std_formatter Obs.Registry.default;
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the program on a traced topology and print every metric")
    Term.(const run $ file_arg $ packets_flag $ backend_flag)

let prims_cmd =
  let run () =
    Planp_runtime.Prims.install ();
    List.iter print_endline (Planp_runtime.Prim.names ())
  in
  Cmd.v (Cmd.info "prims" ~doc:"List registered primitives")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "planpc" ~version:"1.0"
       ~doc:"PLAN-P checker, verifier and compiler driver")
    [ check_cmd; verify_cmd; ast_cmd; fold_cmd; bytecode_cmd; time_cmd;
      simulate_cmd; run_cmd; stats_cmd; prims_cmd ]

let () = exit (Cmd.eval main)
