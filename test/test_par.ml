(* The partitioned parallel driver ({!Netsim.Par_engine}) and its planner
   ({!Netsim.Partition}): plan shapes, window-round mechanics, and the
   load-bearing property — a [~domains:k] run must produce metrics
   byte-identical to the sequential engine, with or without a (pinned)
   fault scenario.  Every parity leg resets [Obs.Registry.default],
   rebuilds the topology from scratch and compares the deterministic
   registry export as a string. *)

module Q = QCheck
module Topology = Netsim.Topology
module Node = Netsim.Node
module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Partition = Netsim.Partition
module Par = Netsim.Par_engine
module Faults = Netsim.Faults
module Registry = Obs.Registry

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

let payload = Payload.of_string "0123456789abcdef"

let or_fail = function Ok v -> v | Error m -> Alcotest.fail m

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let metrics () = Registry.to_json_string Registry.default
let reset () = Registry.reset Registry.default

(* ------------------------------------------------------------------ *)
(* Shared builder: [islands] stars of [1 + hosts] nodes, bridged
   router-to-router in a chain by higher-latency links.  Latencies are
   all distinct (index-scaled offsets) so no two events ever tie. *)

let islands_topo ~islands ~hosts () =
  let topo = Topology.create () in
  let routers =
    Array.init islands (fun i ->
        Topology.add_host topo
          (Printf.sprintf "r%d" i)
          (Printf.sprintf "10.20.%d.254" i))
  in
  let members = ref [] in
  Array.iteri
    (fun i router ->
      for h = 1 to hosts do
        let host =
          Topology.add_host topo
            (Printf.sprintf "h%d_%d" i h)
            (Printf.sprintf "10.20.%d.%d" i h)
        in
        ignore
          (Topology.connect topo router host
             ~name:(Printf.sprintf "l%d_%d" i h)
             ~latency:(0.0005 +. (float_of_int ((i * 8) + h) *. 1e-5))
             ~bandwidth_bps:100_000_000.0);
        members := (host, router) :: !members
      done;
      if i > 0 then
        ignore
          (Topology.connect topo routers.(i - 1) router
             ~name:(Printf.sprintf "bridge%d" (i - 1))
             ~latency:(0.005 +. (float_of_int i *. 1e-4))
             ~bandwidth_bps:100_000_000.0))
    routers;
  Topology.compute_routes topo;
  (topo, routers, List.rev !members)

(* Handler-driven traffic: every host ping-pongs UDP with its router, and
   one flow ping-pongs across every bridge.  Installed AFTER the shard
   (the driver requires an empty schedule at shard time). *)
let install_workload routers members =
  let received = ref 0 in
  let bounce peer_port node packet =
    incr received;
    Node.send_udp node ~dst:packet.Packet.src ~src_port:peer_port
      ~dst_port:
        (match packet.Packet.l4 with
        | Packet.Udp h -> h.Packet.udp_src
        | _ -> peer_port)
      payload
  in
  List.iter
    (fun (host, router) ->
      Node.on_udp host ~port:8001 (bounce 8001);
      Node.on_udp router ~port:8000 (bounce 8000);
      Node.send_udp host ~dst:(Node.addr router) ~src_port:8001
        ~dst_port:8000 payload)
    members;
  Array.iteri
    (fun i a ->
      if i + 1 < Array.length routers then begin
        let b = routers.(i + 1) in
        Node.on_udp a ~port:9100 (bounce 9100);
        Node.on_udp b ~port:9100 (bounce 9100);
        Node.send_udp a ~dst:(Node.addr b) ~src_port:9100 ~dst_port:9100
          payload
      end)
    routers;
  received

(* ------------------------------------------------------------------ *)
(* Partition planning                                                  *)

let plan_two_islands () =
  let topo, routers, members = islands_topo ~islands:2 ~hosts:2 () in
  check "six free components" 6 (Partition.max_parts topo);
  let plan = or_fail (Partition.plan topo ~parts:2) in
  check "parts" 2 plan.Partition.parts;
  check "one cut link" 1 (List.length plan.Partition.cut);
  checkf "lookahead is the bridge latency" 0.0051 plan.Partition.lookahead;
  let part node = plan.Partition.owner.(Topology.node_index topo node) in
  List.iter
    (fun (host, router) ->
      check "host rides with its router" (part router) (part host))
    members;
  checkb "islands on different partitions" true
    (part routers.(0) <> part routers.(1))

let plan_errors () =
  let topo, _, _ = islands_topo ~islands:2 ~hosts:1 () in
  (match Partition.plan topo ~parts:0 with
  | Error m -> checkb "parts >= 1" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "parts=0 accepted");
  (match Partition.plan (Topology.create ()) ~parts:2 with
  | Error m -> checkb "empty topology named" true (contains m "empty")
  | Ok _ -> Alcotest.fail "empty topology accepted")

let plan_segment_glues () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.21.0.1" in
  let b = Topology.add_host topo "b" "10.21.0.2" in
  let c = Topology.add_host topo "c" "10.21.0.3" in
  let seg = Topology.segment topo ~name:"lan" () in
  ignore (Topology.attach topo seg a);
  ignore (Topology.attach topo seg b);
  ignore (Topology.attach topo seg c);
  check "stations glued" 1 (Partition.max_parts topo);
  match Partition.plan topo ~parts:2 with
  | Error m ->
      checkb "error names the split bound" true (contains m "splits into")
  | Ok _ -> Alcotest.fail "glued topology split anyway"

let plan_pin_glues () =
  let topo, routers, members = islands_topo ~islands:2 ~hosts:2 () in
  let h0 = fst (List.nth members 0) in
  let h1 = fst (List.nth members 2) (* first host of island 1 *) in
  check "pin fuses across islands" 5 (Partition.max_parts ~pin:[ h0; h1 ] topo);
  let plan = or_fail (Partition.plan ~pin:[ h0; h1 ] topo ~parts:2) in
  let part node = plan.Partition.owner.(Topology.node_index topo node) in
  check "pinned nodes share a partition" (part h0) (part h1);
  ignore routers

(* ------------------------------------------------------------------ *)
(* Registry merge                                                      *)

let registry_merge_values () =
  let a = Registry.create () and b = Registry.create () in
  let ca = Registry.counter ~registry:a ~help:"c" "m.count" in
  let cb = Registry.counter ~registry:b ~help:"c" "m.count" in
  Registry.add ca 3;
  Registry.add cb 4;
  let only = Registry.counter ~registry:b ~help:"only" "m.only" in
  Registry.add only 7;
  Registry.merge ~into:a b;
  let expect = Registry.create () in
  let ce = Registry.counter ~registry:expect ~help:"c" "m.count" in
  Registry.add ce 7;
  let oe = Registry.counter ~registry:expect ~help:"only" "m.only" in
  Registry.add oe 7;
  checks "merged export" (Registry.to_json_string expect)
    (Registry.to_json_string a)

(* ------------------------------------------------------------------ *)
(* Raw driver mechanics                                                *)

let raw_ping_pong engine name =
  let link =
    Link.create engine ~name ~bandwidth_bps:10_000_000.0 ~latency:0.001 ()
  in
  let count = ref 0 in
  let pkt =
    Packet.udp
      ~src:(Netsim.Addr.of_string "10.22.0.1")
      ~dst:(Netsim.Addr.of_string "10.22.0.2")
      ~src_port:1 ~dst_port:2 payload
  in
  let bounce from p =
    incr count;
    ignore (Link.send link ~from p)
  in
  Link.set_receiver link Link.B (bounce Link.B);
  Link.set_receiver link Link.A (bounce Link.A);
  Engine.schedule engine ~at:1e-6 (fun () -> bounce Link.A pkt);
  count

let par_create_runs_all_engines () =
  let par = Par.create ~domains:2 in
  let engines = Par.engines par in
  let c0 = raw_ping_pong engines.(0) "raw0" in
  let c1 = raw_ping_pong engines.(1) "raw1" in
  Par.run_until par ~stop:0.1;
  checkb "both engines bounced" true (!c0 > 10 && !c1 > 10);
  check "same deterministic count" !c0 !c1;
  Array.iter
    (fun e -> checkf "clock forced to stop" 0.1 (Engine.now e))
    engines;
  (* Drive again: the rounds resume from the forced clocks. *)
  Par.run_until par ~stop:0.2;
  Array.iter
    (fun e -> checkf "clock forced to 0.2" 0.2 (Engine.now e))
    engines;
  checkb "made progress in the second drive" true (!c0 > 100)

let par_drain_empties () =
  let par = Par.create ~domains:3 in
  let fired = Array.make 3 0 in
  Array.iteri
    (fun i e ->
      for k = 1 to 5 do
        Engine.schedule e
          ~at:(float_of_int k *. 0.01)
          (fun () -> fired.(i) <- fired.(i) + 1)
      done)
    (Par.engines par);
  Par.run par;
  Array.iter (fun n -> check "all timers fired" 5 n) fired;
  Array.iter (fun e -> check "drained" 0 (Engine.pending e)) (Par.engines par)

let par_error_reraised () =
  let par = Par.create ~domains:2 in
  let engines = Par.engines par in
  let c0 = raw_ping_pong engines.(0) "rawerr" in
  Engine.schedule engines.(1) ~at:0.01 (fun () -> failwith "boom");
  (try
     Par.run_until par ~stop:0.5;
     Alcotest.fail "error was swallowed"
   with Failure m -> checks "the worker's exception" "boom" m);
  checkb "partition 0 still made progress" true (!c0 > 0)

(* ------------------------------------------------------------------ *)
(* Parity: partitioned runs equal the sequential engine byte-for-byte  *)

(* One leg: fresh registry, fresh topology, workload installed after the
   shard, faults pinned and armed on their owning partition's engine. *)
let parity_leg ~islands ~hosts ?scenario ~domains ~stop () =
  reset ();
  let topo, routers, members = islands_topo ~islands ~hosts () in
  let pin =
    match scenario with
    | None -> []
    | Some sc -> or_fail (Faults.pin_targets topo sc)
  in
  let domains = min domains (Partition.max_parts ~pin topo) in
  let par = or_fail (Par.of_topology ~pin topo ~domains) in
  (match scenario with
  | None -> ()
  | Some sc ->
      let engine =
        match pin with
        | first :: _ when domains > 1 -> Some (Par.engine_of par first)
        | _ -> None
      in
      ignore (Faults.arm ?engine topo sc : Faults.handle));
  let received = install_workload routers members in
  Par.run_until par ~stop;
  (metrics (), !received)

let assert_parity ~islands ~hosts ?scenario ~stop () =
  let base, base_received =
    parity_leg ~islands ~hosts ?scenario ~domains:1 ~stop ()
  in
  checkb "sequential leg did work" true (base_received > 0);
  List.iter
    (fun domains ->
      let m, received =
        parity_leg ~islands ~hosts ?scenario ~domains ~stop ()
      in
      checks (Printf.sprintf "metrics parity at %d domains" domains) base m;
      check
        (Printf.sprintf "delivery parity at %d domains" domains)
        base_received received)
    [ 2; 4 ]

let parity_plain () = assert_parity ~islands:3 ~hosts:2 ~stop:0.2 ()

let parity_with_faults () =
  let scenario =
    Faults.scenario_of_events ~seed:11
      [
        {
          Faults.ft_at = 0.02;
          ft_until = Some 0.15;
          ft_kind = Faults.Loss 0.3;
          ft_target = Some (Faults.Tlink "bridge0");
        };
        {
          Faults.ft_at = 0.05;
          ft_until = Some 0.12;
          ft_kind = Faults.Corrupt 0.2;
          ft_target = Some (Faults.Tlink "l0_1");
        };
      ]
  in
  assert_parity ~islands:3 ~hosts:2 ~scenario ~stop:0.2 ()

(* The QCheck sweep: random shapes, random fault windows, every legal
   domain count — the metrics export must never depend on the sharding. *)
let parity_prop =
  Q.Test.make ~name:"par: random topology/faults metrics parity" ~count:20
    Q.(triple (int_range 2 4) (int_range 1 3) (int_range 0 2))
    (fun (islands, hosts, fault) ->
      let scenario =
        match fault with
        | 0 -> None
        | 1 ->
            Some
              (Faults.scenario_of_events ~seed:(17 + islands)
                 [
                   {
                     Faults.ft_at = 0.01;
                     ft_until = Some 0.09;
                     ft_kind = Faults.Loss 0.25;
                     ft_target = Some (Faults.Tlink "bridge0");
                   };
                 ])
        | _ ->
            Some
              (Faults.scenario_of_events ~seed:(23 + hosts)
                 [
                   {
                     Faults.ft_at = 0.015;
                     ft_until = Some 0.08;
                     ft_kind = Faults.Corrupt 0.4;
                     ft_target = Some (Faults.Tlink "l0_1");
                   };
                 ])
      in
      let base, _ =
        parity_leg ~islands ~hosts ?scenario ~domains:1 ~stop:0.12 ()
      in
      List.for_all
        (fun domains ->
          let m, _ =
            parity_leg ~islands ~hosts ?scenario ~domains ~stop:0.12 ()
          in
          String.equal base m)
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Experiment-shaped pinned parity: the paper's three topologies        *)

(* Audio (Fig. 5): server -link-> router -shared segment-> {client,
   sink}.  The segment glues router, client and sink into one partition;
   the backbone link is the only cut. *)
let audio_shape_parity () =
  let leg domains =
    reset ();
    let topo = Topology.create () in
    let server = Topology.add_host topo "audio-server" "10.30.0.1" in
    let router = Topology.add_host topo "router" "10.30.0.254" in
    let client = Topology.add_host topo "client" "10.30.1.2" in
    let sink = Topology.add_host topo "load-sink" "10.30.1.3" in
    ignore
      (Topology.connect topo server router ~name:"backbone" ~latency:0.002
         ~bandwidth_bps:100_000_000.0);
    let seg =
      Topology.segment topo ~name:"client-segment" ~latency:0.001
        ~bandwidth_bps:10_000_000.0 ()
    in
    ignore (Topology.attach topo seg router);
    ignore (Topology.attach topo seg client);
    ignore (Topology.attach topo seg sink);
    Topology.compute_routes topo;
    let par = or_fail (Par.of_topology topo ~domains) in
    let frames = ref 0 in
    Node.on_udp client ~port:5004 (fun _ _ -> incr frames);
    let engine = Node.engine server in
    let rec send n () =
      if n > 0 then begin
        Node.send_udp server ~dst:(Node.addr client) ~src_port:5004
          ~dst_port:5004 payload;
        Engine.schedule_after engine ~delay:0.02 (send (n - 1))
      end
    in
    Engine.schedule engine ~at:0.001 (send 20);
    Par.run_until par ~stop:0.6;
    (metrics (), !frames)
  in
  let m1, f1 = leg 1 in
  check "all frames played" 20 f1;
  let m2, f2 = leg 2 in
  check "frame parity" f1 f2;
  checks "metrics parity" m1 m2

(* MPEG/image: a transcoding chain source -> r1 -> r2 -> sink with
   distinct link latencies; splits up to four ways. *)
let mpeg_shape_parity () =
  let leg domains =
    reset ();
    let topo = Topology.create () in
    let source = Topology.add_host topo "source" "10.31.0.1" in
    let r1 = Topology.add_host topo "r1" "10.31.0.2" in
    let r2 = Topology.add_host topo "r2" "10.31.0.3" in
    let sink = Topology.add_host topo "sink" "10.31.0.4" in
    ignore
      (Topology.connect topo source r1 ~name:"hop1" ~latency:0.003
         ~bandwidth_bps:50_000_000.0);
    ignore
      (Topology.connect topo r1 r2 ~name:"hop2" ~latency:0.004
         ~bandwidth_bps:50_000_000.0);
    ignore
      (Topology.connect topo r2 sink ~name:"hop3" ~latency:0.005
         ~bandwidth_bps:50_000_000.0);
    Topology.compute_routes topo;
    let par = or_fail (Par.of_topology topo ~domains) in
    let got = ref 0 in
    Node.on_udp sink ~port:1234 (fun _ _ -> incr got);
    let engine = Node.engine source in
    let rec send n () =
      if n > 0 then begin
        Node.send_udp source ~dst:(Node.addr sink) ~src_port:1234
          ~dst_port:1234 payload;
        Engine.schedule_after engine ~delay:0.005 (send (n - 1))
      end
    in
    Engine.schedule engine ~at:0.001 (send 30);
    Par.run_until par ~stop:0.5;
    (metrics (), !got)
  in
  let m1, g1 = leg 1 in
  check "every frame crossed the chain" 30 g1;
  List.iter
    (fun domains ->
      let m, g = leg domains in
      check "delivery parity" g1 g;
      checks "metrics parity" m1 m)
    [ 2; 4 ]

(* HTTP: two client LANs requesting from a server island across a
   backbone; responses fan back three packets per request. *)
let http_shape_parity () =
  let leg domains =
    reset ();
    let topo = Topology.create () in
    let gw1 = Topology.add_host topo "gw1" "10.32.1.254" in
    let gw2 = Topology.add_host topo "gw2" "10.32.2.254" in
    let sgw = Topology.add_host topo "sgw" "10.32.0.254" in
    let server = Topology.add_host topo "server" "10.32.0.1" in
    ignore
      (Topology.connect topo sgw server ~name:"server-lan" ~latency:0.0004
         ~bandwidth_bps:100_000_000.0);
    ignore
      (Topology.connect topo gw1 sgw ~name:"wan1" ~latency:0.006
         ~bandwidth_bps:20_000_000.0);
    ignore
      (Topology.connect topo gw2 sgw ~name:"wan2" ~latency:0.007
         ~bandwidth_bps:20_000_000.0);
    let clients = ref [] in
    List.iteri
      (fun i gw ->
        for c = 1 to 2 do
          let client =
            Topology.add_host topo
              (Printf.sprintf "c%d_%d" (i + 1) c)
              (Printf.sprintf "10.32.%d.%d" (i + 1) c)
          in
          ignore
            (Topology.connect topo gw client
               ~name:(Printf.sprintf "lan%d_%d" (i + 1) c)
               ~latency:(0.0005 +. (float_of_int ((i * 4) + c) *. 1e-5))
               ~bandwidth_bps:100_000_000.0);
          clients := client :: !clients
        done)
      [ gw1; gw2 ];
    Topology.compute_routes topo;
    let par = or_fail (Par.of_topology topo ~domains) in
    let responses = ref 0 in
    Node.on_udp server ~port:80 (fun node packet ->
        for _ = 1 to 3 do
          Node.send_udp node ~dst:packet.Packet.src ~src_port:80
            ~dst_port:8080 payload
        done);
    List.iter
      (fun client ->
        Node.on_udp client ~port:8080 (fun _ _ -> incr responses);
        Node.send_udp client ~dst:(Node.addr server) ~src_port:8080
          ~dst_port:80 payload)
      !clients;
    Par.run_until par ~stop:0.4;
    (metrics (), !responses)
  in
  let m1, r1 = leg 1 in
  check "three responses per request" 12 r1;
  List.iter
    (fun domains ->
      let m, r = leg domains in
      check "response parity" r1 r;
      checks "metrics parity" m1 m)
    [ 2; 3 ]

(* The tentpole pin: a full closed adaptation loop — paced monitor,
   policy firing mid-run, a coordinated swap rolled out over a 3-router
   chain through the partitioned network — must export byte-identical
   metrics for any domain count. The monitor re-homes onto window
   barriers ([Plane.arm ~par]), so the decision sees every partition
   flushed and the deploy capsules ride the same conduits as traffic. *)
let adapt_shape_parity () =
  Planp_runtime.Prims.install ();
  let source_v1 =
    "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"
  in
  let source_v2 =
    "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 2, ss))"
  in
  let leg domains =
    reset ();
    let topo = Topology.create () in
    let ctl = Topology.add_host topo "ctl" "10.40.0.1" in
    let r0 = Topology.add_host topo "r0" "10.40.0.254" in
    let r1 = Topology.add_host topo "r1" "10.40.1.254" in
    let r2 = Topology.add_host topo "r2" "10.40.2.254" in
    let sink = Topology.add_host topo "sink" "10.40.2.2" in
    ignore
      (Topology.connect topo ctl r0 ~name:"c0" ~latency:0.0011
         ~bandwidth_bps:100_000_000.0);
    ignore
      (Topology.connect topo r0 r1 ~name:"b01" ~latency:0.0023
         ~bandwidth_bps:100_000_000.0);
    ignore
      (Topology.connect topo r1 r2 ~name:"b12" ~latency:0.0031
         ~bandwidth_bps:100_000_000.0);
    ignore
      (Topology.connect topo r2 sink ~name:"drop" ~latency:0.0007
         ~bandwidth_bps:100_000_000.0);
    (* The managed fleet lives on leaves off each router — a swapped-in
       program consumes the UDP its node sees, so it must not sit on the
       ctl->sink forwarding path. *)
    let fleet =
      List.mapi
        (fun i (router, addr, latency) ->
          let node =
            Topology.add_host topo (Printf.sprintf "d%d" i) addr
          in
          ignore
            (Topology.connect topo router node
               ~name:(Printf.sprintf "l%d" i)
               ~latency ~bandwidth_bps:100_000_000.0);
          node)
        [
          (r0, "10.40.0.2", 0.0006);
          (r1, "10.40.1.2", 0.0008);
          (r2, "10.40.2.3", 0.0009);
        ]
    in
    Topology.compute_routes topo;
    (* Shard before any event is scheduled (the planpc ordering). *)
    let par = or_fail (Par.of_topology topo ~domains) in
    let daemons =
      List.map (fun node -> (node, Deploy.Daemon.start node ())) fleet
    in
    let controller = Deploy.Controller.create ctl () in
    let seen = ref 0 in
    Node.on_udp sink ~port:9000 (fun _ _ -> incr seen);
    (* Steady traffic across the whole chain drives the "load" signal
       over threshold; the sender lives on ctl's partition engine. *)
    let inj_engine = Par.engine_of par ctl in
    for burst = 0 to 5 do
      Engine.schedule inj_engine
        ~at:(0.01 +. (0.5 *. float_of_int burst))
        (fun () ->
          for i = 1 to 5 do
            Node.send_udp ctl ~dst:(Node.addr sink) ~src_port:(9000 + i)
              ~dst_port:9000 payload
          done)
    done;
    let policy =
      or_fail
        (Adapt.Policy.parse
           "period 0.5\nrule go: when load > 0.5 for 0.5 cooldown 60 do swap prog fast\n")
    in
    let targets = List.map Node.addr fleet in
    let env =
      {
        Adapt.Plane.de_controller = controller;
        de_backend = "jit";
        de_targets_of = (fun p -> if p = "prog" then targets else []);
        de_variant_of =
          (fun ~program ~variant ->
            if program <> "prog" then None
            else if variant = "fast" then
              Some
                { Adapt.Plane.v_source = source_v2; v_authenticated = false }
            else
              Some
                { Adapt.Plane.v_source = source_v1; v_authenticated = false });
        de_concurrency = 2;
        de_nak_policy = Deploy.Controller.Abort;
        de_nak_quarantine = 3;
      }
    in
    let plane =
      Adapt.Plane.arm ~env ~par
        ~active:[ ("prog", "default") ]
        ~engine:(Topology.engine topo) ~until:4.0
        ~signals:
          [ ("load", Adapt.Monitor.Rate_of (fun () -> float_of_int !seen)) ]
        policy
    in
    Par.run_until par ~stop:6.0;
    let stats = Adapt.Plane.stats plane in
    let epochs =
      List.map (fun (_, d) -> Deploy.Daemon.active_epoch d ~name:"prog") daemons
    in
    (metrics (), !seen, stats.Adapt.Plane.st_swaps, epochs)
  in
  let m1, s1, swaps1, epochs1 = leg 1 in
  check "traffic flowed" 30 s1;
  check "the swap converged" 1 swaps1;
  Alcotest.(check (list (option int)))
    "every fleet node on the swapped epoch"
    [ Some 1; Some 1; Some 1 ]
    epochs1;
  List.iter
    (fun domains ->
      let m, s, swaps, epochs = leg domains in
      check "traffic parity" s1 s;
      check "decision parity" swaps1 swaps;
      Alcotest.(check (list (option int))) "epoch parity" epochs1 epochs;
      checks "metrics parity" m1 m)
    [ 2; 4 ]

let () =
  Alcotest.run "par"
    [
      ( "partition",
        [
          Alcotest.test_case "plan two islands" `Quick plan_two_islands;
          Alcotest.test_case "plan errors" `Quick plan_errors;
          Alcotest.test_case "segments glue" `Quick plan_segment_glues;
          Alcotest.test_case "pins glue" `Quick plan_pin_glues;
        ] );
      ( "registry",
        [ Alcotest.test_case "merge" `Quick registry_merge_values ] );
      ( "driver",
        [
          Alcotest.test_case "raw engines run and resume" `Quick
            par_create_runs_all_engines;
          Alcotest.test_case "drain mode empties" `Quick par_drain_empties;
          Alcotest.test_case "worker errors re-raise" `Quick
            par_error_reraised;
        ] );
      ( "parity",
        [
          Alcotest.test_case "plain islands" `Quick parity_plain;
          Alcotest.test_case "with pinned faults" `Quick parity_with_faults;
          Alcotest.test_case "audio shape" `Quick audio_shape_parity;
          Alcotest.test_case "mpeg shape" `Quick mpeg_shape_parity;
          Alcotest.test_case "http shape" `Quick http_shape_parity;
          Alcotest.test_case "adapt closed loop" `Quick adapt_shape_parity;
          QCheck_alcotest.to_alcotest parity_prop;
        ] );
    ]
