(* The observability layer: registry semantics, export determinism, and
   the merged timeline. Everything here uses private registries so the
   process-wide [Obs.Registry.default] (fed by the simulator) stays out of
   the assertions — except the determinism test, which drives two full
   simulated runs against [default] the way the CLI does. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* --- counters ----------------------------------------------------- *)

let counter_get_or_create () =
  let registry = Obs.Registry.create () in
  let c1 = Obs.Registry.counter ~registry "requests" in
  let c2 = Obs.Registry.counter ~registry "requests" in
  Obs.Registry.incr c1;
  Obs.Registry.add c2 2;
  (* Same name, same labels: both handles hit one cell. *)
  check "aggregated" 3 (Obs.Registry.count c1);
  check "same cell" 3 (Obs.Registry.count c2)

let counter_labels_distinguish () =
  let registry = Obs.Registry.create () in
  let a = Obs.Registry.counter ~registry ~labels:[ ("node", "a") ] "hits" in
  let b = Obs.Registry.counter ~registry ~labels:[ ("node", "b") ] "hits" in
  Obs.Registry.incr a;
  check "a independent" 1 (Obs.Registry.count a);
  check "b independent" 0 (Obs.Registry.count b)

let counter_label_order_canonical () =
  let registry = Obs.Registry.create () in
  let x =
    Obs.Registry.counter ~registry ~labels:[ ("b", "2"); ("a", "1") ] "m"
  in
  let y =
    Obs.Registry.counter ~registry ~labels:[ ("a", "1"); ("b", "2") ] "m"
  in
  Obs.Registry.incr x;
  (* Label order never matters: both orderings canonicalize to one cell. *)
  check "canonicalized to one cell" 1 (Obs.Registry.count y);
  checks "canonical rendering" "a=1,b=2"
    (Obs.Registry.labels_to_string [ ("b", "2"); ("a", "1") ])

let counter_rejects_negative () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "mono" in
  checkb "negative add raises" true
    (try
       Obs.Registry.add c (-1);
       false
     with Invalid_argument _ -> true)

let kind_mismatch_raises () =
  let registry = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry "dual");
  checkb "same name as gauge raises" true
    (try
       ignore (Obs.Registry.gauge ~registry "dual");
       false
     with Invalid_argument _ -> true)

(* --- gauges -------------------------------------------------------- *)

let gauge_set_and_callback () =
  let registry = Obs.Registry.create () in
  let g = Obs.Registry.gauge ~registry "depth" in
  Obs.Registry.set g 7.0;
  checkf "stored" 7.0 (Obs.Registry.gauge_value g);
  let current = ref 3.0 in
  Obs.Registry.set_fn g (fun () -> !current);
  current := 11.0;
  (* Callback gauges sample at read time, not at set_fn time. *)
  checkf "sampled late" 11.0 (Obs.Registry.gauge_value g)

let volatile_excluded_from_exports () =
  let registry = Obs.Registry.create () in
  let w = Obs.Registry.gauge ~registry ~volatile:true "wall_s" in
  let s = Obs.Registry.gauge ~registry "sim_s" in
  Obs.Registry.set w 1.23;
  Obs.Registry.set s 4.56;
  let default = Obs.Registry.to_json_string registry in
  checkb "volatile hidden by default" false (contains default "wall_s");
  checkb "stable gauge exported" true (contains default "sim_s");
  let full = Obs.Registry.to_json_string ~include_volatile:true registry in
  checkb "volatile on request" true (contains full "wall_s")

(* --- histograms ----------------------------------------------------- *)

let histogram_buckets () =
  (* The log-scale invariant: slots are half-open powers-of-two ranges
     [2^(e-1), 2^e), so every value sits at or above the previous slot's
     bound and strictly below its own. *)
  List.iter
    (fun v ->
      let slot = Obs.Registry.bucket_of v in
      let upper = Obs.Registry.bucket_upper_bound slot in
      checkb (Printf.sprintf "%g within bound %g" v upper) true (v <= upper);
      if slot > 0 && v > 0.0 then
        checkb
          (Printf.sprintf "%g at or above previous bound" v)
          true
          (v >= Obs.Registry.bucket_upper_bound (slot - 1)))
    [ 1e-9; 0.001; 0.5; 1.0; 1.5; 2.0; 3.0; 1024.0; 1e9 ];
  check "nonpositive to slot zero" 0 (Obs.Registry.bucket_of (-4.0));
  check "zero to slot zero" 0 (Obs.Registry.bucket_of 0.0);
  (* A power of two opens a new slot: 2.0 sits with 3.0 in [2, 4), not
     with 1.5 in [1, 2). *)
  check "same slot for [2, 4)" (Obs.Registry.bucket_of 2.0)
    (Obs.Registry.bucket_of 3.0);
  checkb "1.5 and 2.0 in different slots" true
    (Obs.Registry.bucket_of 1.5 <> Obs.Registry.bucket_of 2.0)

let histogram_observe_and_export () =
  let registry = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~registry "lat" in
  List.iter (Obs.Registry.observe h) [ 0.5; 0.5; 3.0 ];
  check "observations" 3 (Obs.Registry.observations h);
  match Obs.Registry.snapshot registry with
  | [ { Obs.Registry.e_sample =
          Obs.Registry.Shistogram { hs_count; hs_sum; hs_buckets };
        _ } ] ->
      check "count" 3 hs_count;
      checkf "sum" 4.0 hs_sum;
      (* Sparse buckets: only touched slots appear. *)
      check "two occupied buckets" 2 (List.length hs_buckets);
      checkb "0.5 bucket has two" true
        (List.exists (fun (_, n) -> n = 2) hs_buckets)
  | _ -> Alcotest.fail "expected exactly one histogram entry"

(* --- typed reads ----------------------------------------------------- *)

let typed_reads () =
  let registry = Obs.Registry.create () in
  let c =
    Obs.Registry.counter ~registry ~labels:[ ("node", "a") ] "hits"
  in
  Obs.Registry.add c 7;
  let g = Obs.Registry.gauge ~registry "depth" in
  Obs.Registry.set g 2.5;
  let h = Obs.Registry.histogram ~registry "lat" in
  Obs.Registry.observe h 1.0;
  Obs.Registry.observe h 3.0;
  (match Obs.Registry.read_counter ~registry ~labels:[ ("node", "a") ] "hits" with
  | Some n -> check "counter value" 7 n
  | None -> Alcotest.fail "counter not found");
  (match Obs.Registry.read_gauge ~registry "depth" with
  | Some v -> checkf "gauge value" 2.5 v
  | None -> Alcotest.fail "gauge not found");
  (match Obs.Registry.read_histogram ~registry "lat" with
  | Some (n, sum) ->
      check "histogram count" 2 n;
      checkf "histogram sum" 4.0 sum
  | None -> Alcotest.fail "histogram not found");
  (match Obs.Registry.read_quantile ~registry ~q:1.0 "lat" with
  | Some v -> checkb "q1 covers the max" true (v >= 3.0)
  | None -> Alcotest.fail "quantile not found");
  checkf "quantile by handle agrees" (Obs.Registry.quantile h 1.0)
    (Option.get (Obs.Registry.read_quantile ~registry ~q:1.0 "lat"))

let typed_reads_never_create () =
  let registry = Obs.Registry.create () in
  checkb "absent counter is None" true
    (Obs.Registry.read_counter ~registry "ghost" = None);
  checkb "absent gauge is None" true
    (Obs.Registry.read_gauge ~registry "ghost" = None);
  checkb "absent histogram is None" true
    (Obs.Registry.read_histogram ~registry "ghost" = None);
  checkb "absent quantile is None" true
    (Obs.Registry.read_quantile ~registry ~q:0.5 "ghost" = None);
  (* Probing registered nothing: the registry is still empty. *)
  check "no cells created" 0 (List.length (Obs.Registry.snapshot registry));
  (* Labels are part of the key: same name, other labels, still None. *)
  ignore (Obs.Registry.counter ~registry ~labels:[ ("node", "a") ] "hits");
  checkb "label mismatch is None" true
    (Obs.Registry.read_counter ~registry ~labels:[ ("node", "b") ] "hits"
    = None)

let typed_reads_wrong_kind_raises () =
  let registry = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry "c");
  checkb "reading a counter as a gauge raises" true
    (match Obs.Registry.read_gauge ~registry "c" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "reading a counter as a histogram raises" true
    (match Obs.Registry.read_histogram ~registry "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- enable/disable and reset --------------------------------------- *)

let disabled_updates_are_noops () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "c" in
  Obs.Registry.set_enabled registry false;
  Obs.Registry.incr c;
  check "no count while disabled" 0 (Obs.Registry.count c);
  Obs.Registry.set_enabled registry true;
  Obs.Registry.incr c;
  check "counts again" 1 (Obs.Registry.count c)

let reset_drops_metrics () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "gone" in
  Obs.Registry.incr c;
  Obs.Registry.reset registry;
  check "empty snapshot" 0 (List.length (Obs.Registry.snapshot registry));
  (* Re-created handles start fresh. *)
  let c' = Obs.Registry.counter ~registry "gone" in
  check "fresh cell" 0 (Obs.Registry.count c')

(* --- exports --------------------------------------------------------- *)

let snapshot_sorted () =
  let registry = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry "zz");
  ignore (Obs.Registry.counter ~registry "aa");
  ignore (Obs.Registry.counter ~registry ~labels:[ ("x", "2") ] "mm");
  ignore (Obs.Registry.counter ~registry ~labels:[ ("x", "1") ] "mm");
  let names =
    List.map
      (fun e ->
        e.Obs.Registry.e_name
        ^ Obs.Registry.labels_to_string e.Obs.Registry.e_labels)
      (Obs.Registry.snapshot registry)
  in
  Alcotest.(check (list string))
    "sorted by name then labels"
    [ "aa"; "mmx=1"; "mmx=2"; "zz" ]
    names

let csv_rows () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry ~labels:[ ("node", "a") ] "hits" in
  Obs.Registry.incr c;
  let h = Obs.Registry.histogram ~registry "lat" in
  Obs.Registry.observe h 1.5;
  let csv = Obs.Registry.to_csv_string registry in
  checkb "header" true (contains csv "name,labels,type,field,value");
  checkb "counter row" true (contains csv "hits,node=a,counter,value,1");
  checkb "histogram count row" true (contains csv "lat,,histogram,count,1");
  checkb "histogram bucket row" true (contains csv "lat,,histogram,le_2.0,1")

let json_float_repr () =
  checks "integral" "2.0" (Obs.Json.float_repr 2.0);
  checks "nan is null" "null" (Obs.Json.float_repr Float.nan);
  checks "fractional stable" "0.1" (Obs.Json.float_repr 0.1)

(* --- timeline -------------------------------------------------------- *)

let timeline_merge_stable () =
  let ev at source = Obs.Timeline.event ~at ~source ~kind:"k" [] in
  let merged =
    Obs.Timeline.merge
      [ [ ev 1.0 "first"; ev 2.0 "first" ]; [ ev 1.0 "second"; ev 1.5 "second" ] ]
  in
  Alcotest.(check (list string))
    "time-ordered, producer order on ties"
    [ "first"; "second"; "second"; "first" ]
    (List.map (fun e -> e.Obs.Timeline.source) merged)

let timeline_json () =
  let registry = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry "events" in
  Obs.Registry.incr c;
  let events =
    [ Obs.Timeline.of_snapshot ~at:0.25 (Obs.Registry.snapshot registry) ]
  in
  let json = Obs.Timeline.to_json_string events in
  checkb "format" true (contains json "planp-timeline/1");
  checkb "snapshot embedded" true (contains json "\"events\"");
  checkb "time" true (contains json "0.25")

(* --- determinism over a full simulated run --------------------------- *)

(* The same seeded scenario twice, with a registry reset and fresh
   components in between, must export byte-identical JSON — the property
   the CLI's --metrics-out relies on. *)
let run_once () =
  Obs.Registry.reset Obs.Registry.default;
  let topo = Netsim.Topology.create () in
  let a = Netsim.Topology.add_host topo "a" "10.0.0.1" in
  let r = Netsim.Topology.add_host topo "r" "10.0.0.254" in
  let b = Netsim.Topology.add_host topo "b" "10.0.0.2" in
  ignore (Netsim.Topology.connect ~name:"ar" topo a r);
  ignore (Netsim.Topology.connect ~name:"rb" topo r b);
  Netsim.Topology.compute_routes topo;
  for i = 1 to 10 do
    Netsim.Node.send_udp a ~dst:(Netsim.Node.addr b) ~src_port:(4000 + i)
      ~dst_port:53
      (Netsim.Payload.of_string "probe")
  done;
  Netsim.Topology.run topo;
  Obs.Registry.to_json_string Obs.Registry.default

let export_deterministic () =
  let first = run_once () in
  let second = run_once () in
  checks "byte-identical across identical runs" first second;
  checkb "covers the engine" true (contains first "netsim.engine.events");
  checkb "covers links" true (contains first "netsim.link.tx_packets");
  checkb "covers nodes" true (contains first "netsim.node.delivered")

(* Same property for the deployment plane: an in-band deploy re-run from
   scratch exports the same bytes.  The daemon's verification wall-clock
   gauge is the one wall-clock-dependent metric — it must stay volatile
   (excluded by default) or this breaks. *)
let deploy_run_once () =
  Obs.Registry.reset Obs.Registry.default;
  let topo = Netsim.Topology.create () in
  let ctrl = Netsim.Topology.add_host topo "ctrl" "10.0.0.1" in
  let target = Netsim.Topology.add_host topo "target" "10.0.0.2" in
  ignore (Netsim.Topology.connect ~name:"wire" topo ctrl target);
  Netsim.Topology.compute_routes topo;
  let daemon = Deploy.Daemon.start target () in
  let controller = Deploy.Controller.create ctrl () in
  let outcome = ref None in
  Deploy.Controller.deploy controller
    ~target:(Netsim.Node.addr target)
    ~name:"obs-probe"
    ~source:
      "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"
    ~on_done:(fun o -> outcome := Some o)
    ();
  Netsim.Topology.run topo;
  (match !outcome with
  | Some (Deploy.Controller.Acked _) -> ()
  | _ -> Alcotest.fail "deploy did not ack");
  ignore (Deploy.Daemon.active_epoch daemon ~name:"obs-probe");
  ( Obs.Registry.to_json_string Obs.Registry.default,
    Obs.Registry.to_json_string ~include_volatile:true Obs.Registry.default )

let deploy_export_deterministic () =
  let first, first_volatile = deploy_run_once () in
  let second, _ = deploy_run_once () in
  checks "byte-identical across identical deploys" first second;
  checkb "controller metrics present" true
    (contains first "deploy.controller.capsules_sent");
  checkb "daemon metrics present" true (contains first "deploy.daemon.installs");
  checkb "epoch gauge present" true
    (contains first "deploy.daemon.epochs_active");
  checkb "wall-clock verify gauge excluded by default" false
    (contains first "deploy.daemon.verify_wall_s");
  checkb "wall-clock verify gauge opt-in" true
    (contains first_volatile "deploy.daemon.verify_wall_s")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter get-or-create" `Quick counter_get_or_create;
          Alcotest.test_case "labels distinguish" `Quick counter_labels_distinguish;
          Alcotest.test_case "label order canonical" `Quick
            counter_label_order_canonical;
          Alcotest.test_case "counter rejects negative" `Quick
            counter_rejects_negative;
          Alcotest.test_case "kind mismatch raises" `Quick kind_mismatch_raises;
          Alcotest.test_case "gauge set and callback" `Quick gauge_set_and_callback;
          Alcotest.test_case "volatile excluded" `Quick
            volatile_excluded_from_exports;
          Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
          Alcotest.test_case "histogram export" `Quick histogram_observe_and_export;
          Alcotest.test_case "disabled is a no-op" `Quick disabled_updates_are_noops;
          Alcotest.test_case "reset drops metrics" `Quick reset_drops_metrics;
          Alcotest.test_case "typed reads" `Quick typed_reads;
          Alcotest.test_case "typed reads never create" `Quick
            typed_reads_never_create;
          Alcotest.test_case "typed reads wrong kind raises" `Quick
            typed_reads_wrong_kind_raises;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot sorted" `Quick snapshot_sorted;
          Alcotest.test_case "csv rows" `Quick csv_rows;
          Alcotest.test_case "float repr" `Quick json_float_repr;
          Alcotest.test_case "timeline merge stable" `Quick timeline_merge_stable;
          Alcotest.test_case "timeline json" `Quick timeline_json;
          Alcotest.test_case "deterministic run export" `Quick export_deterministic;
          Alcotest.test_case "deterministic deploy export" `Quick
            deploy_export_deterministic;
        ] );
    ]
