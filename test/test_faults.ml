(* The fault-injection plane: scenario parsing, the per-fault semantics
   (flaps, loss, corruption, congestion, crash/restart, reconvergence),
   the golden parity of an empty scenario, and the hardened Reliable /
   deploy retry behaviour under faults. *)

let () = Planp_runtime.Prims.install ()

module Engine = Netsim.Engine
module Addr = Netsim.Addr
module Payload = Netsim.Payload
module Link = Netsim.Link
module Node = Netsim.Node
module Topology = Netsim.Topology
module Faults = Netsim.Faults
module Sender = Netsim.Reliable.Sender
module Receiver = Netsim.Reliable.Receiver
module Controller = Deploy.Controller
module Daemon = Deploy.Daemon

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let fevent ?until ?target ~at kind =
  { Faults.ft_at = at; ft_until = until; ft_kind = kind; ft_target = target }

(* ---------- Link.set_up drops in-flight packets (regression) ---------- *)

let link_cut_drops_in_flight () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo ~latency:0.05 a b in
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  let send () =
    Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty
  in
  send ();
  (* Cut the cable while the packet is on the wire: it must be dropped
     and counted, not delivered later. *)
  Engine.schedule (Topology.engine topo) ~at:0.01 (fun () ->
      Link.set_up link false);
  Topology.run topo;
  check "in-flight packet not delivered" 0 !got;
  check "in-flight packet counted as drop" 1 (Link.drops link Link.A);
  (* The cleared delivery ring must still work after the link comes back:
     stale scheduler tokens may not eat real deliveries. *)
  Link.set_up link true;
  send ();
  Topology.run topo;
  check "delivered exactly once after recovery" 1 !got;
  check "no extra drops" 1 (Link.drops link Link.A)

(* ---------- scenario parsing ---------- *)

let parse_scenario_grammar () =
  let text =
    "# a comment\n\
     seed 99\n\n\
     at 1.0 until 2.5 link down uplink\n\
     at 0.5 link loss uplink 0.05\n\
     at 0.5 until 9.0 segment corrupt lan 0.01\n\
     at 3.0 until 6.0 congest backbone bandwidth 0.5 queue 0.25\n\
     at 4.0 until 6.0 node crash router\n\
     at 4.5 node crash-wipe router\n\
     at 2.5 reroute\n"
  in
  match Faults.parse_scenario text with
  | Error message -> Alcotest.failf "parse failed: %s" message
  | Ok scenario ->
      check "seed" 99 scenario.Faults.seed;
      check "events" 7 (List.length scenario.Faults.events);
      let e = List.hd scenario.Faults.events in
      checkf "at" 1.0 e.Faults.ft_at;
      checkb "until" true (e.Faults.ft_until = Some 2.5);
      checkb "kind" true (e.Faults.ft_kind = Faults.Link_down);
      checkb "target" true (e.Faults.ft_target = Some (Faults.Tlink "uplink"));
      let congest = List.nth scenario.Faults.events 3 in
      checkb "congest factors" true
        (congest.Faults.ft_kind
        = Faults.Congest { bandwidth_factor = 0.5; queue_factor = 0.25 });
      let wipe = List.nth scenario.Faults.events 5 in
      checkb "crash-wipe" true
        (wipe.Faults.ft_kind = Faults.Crash { wipe = true })

let parse_scenario_errors () =
  let expect_error label text =
    match Faults.parse_scenario text with
    | Error message ->
        checkb (label ^ " names a line") true
          (String.length message > 0
          && String.sub message 0 4 = "line")
    | Ok _ -> Alcotest.failf "%s: expected a parse error" label
  in
  expect_error "bad rate" "at 1.0 link loss uplink 1.5\n";
  expect_error "until before at" "at 2.0 until 1.0 link down uplink\n";
  expect_error "unknown keyword" "at 1.0 link explode uplink\n";
  expect_error "bad factor" "at 1.0 until 2.0 congest x bandwidth 0.0\n";
  expect_error "trailing junk" "at 1.0 reroute zebra\n"

let arm_rejects_unknown_target () =
  let topo = Topology.create () in
  ignore (Topology.add_host topo "a" "10.0.0.1");
  Topology.compute_routes topo;
  let scenario =
    Faults.scenario_of_events [ fevent ~at:1.0 ~target:(Faults.Tlink "nope") Faults.Link_down ]
  in
  checkb "unknown target raises" true
    (match Faults.arm topo scenario with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- empty-scenario golden parity ---------- *)

(* An empty scenario must leave the run bit-identical to no fault plane
   at all: same deliveries, same event count, same finish time. *)
let empty_scenario_golden_parity () =
  let run armed =
    let topo = Topology.create () in
    let a = Topology.add_host topo "a" "10.0.0.1" in
    let b = Topology.add_host topo "b" "10.0.0.2" in
    ignore (Topology.connect topo ~name:"wire" ~latency:0.002 a b);
    Topology.compute_routes topo;
    if armed then ignore (Faults.arm topo Faults.empty);
    let delivered = ref [] in
    let receiver =
      Receiver.listen b ~port:9 ~on_message:(fun payload ->
          delivered := Payload.get_u32 payload 0 :: !delivered)
        ()
    in
    let sender =
      Sender.connect a ~dst:(Node.addr b) ~dst_port:9 ~src_port:9 ()
    in
    for i = 0 to 39 do
      let w = Payload.Writer.create () in
      Payload.Writer.u32 w i;
      Sender.send sender (Payload.Writer.finish w)
    done;
    Topology.run topo;
    ( List.rev !delivered,
      Receiver.delivered receiver,
      Engine.events_processed (Topology.engine topo),
      Engine.now (Topology.engine topo) )
  in
  let plain = run false and armed = run true in
  checkb "bit-identical run" true (plain = armed)

(* ---------- congestion bursts ---------- *)

let congest_restores_medium () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link =
    Topology.connect topo ~name:"backbone" ~bandwidth_bps:8e6
      ~latency:0.001 a b
  in
  Link.set_queue_capacity link 64;
  Topology.compute_routes topo;
  let scenario =
    match
      Faults.parse_scenario
        "seed 3\nat 1.0 until 2.0 congest backbone bandwidth 0.5 queue 0.25\n"
    with
    | Ok scenario -> scenario
    | Error message -> Alcotest.failf "parse: %s" message
  in
  ignore (Faults.arm topo scenario);
  Engine.schedule (Topology.engine topo) ~at:1.5 (fun () ->
      checkf "bandwidth halved inside the window" 4e6 (Link.bandwidth_bps link);
      check "queue scaled inside the window" 16 (Link.queue_capacity link));
  Topology.run_until topo ~stop:3.0;
  checkf "bandwidth restored" 8e6 (Link.bandwidth_bps link);
  check "queue restored" 64 (Link.queue_capacity link)

(* ---------- loss windows and metrics ---------- *)

let loss_window_counts_and_detaches () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo ~name:"wire" ~latency:0.0001 a b in
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  let scenario =
    Faults.scenario_of_events ~seed:5
      [ fevent ~at:0.5 ~until:1.5 ~target:(Faults.Tlink "wire") (Faults.Loss 1.0) ]
  in
  let handle = Faults.arm topo scenario in
  (* 10 packets before, 10 inside, 10 after the window. *)
  List.iter
    (fun t0 ->
      for i = 0 to 9 do
        Engine.schedule (Topology.engine topo)
          ~at:(t0 +. (0.01 *. float_of_int i))
          (fun () ->
            Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7
              Payload.empty)
      done)
    [ 0.1; 0.7; 1.7 ];
  Topology.run topo;
  check "packets outside the window delivered" 20 !got;
  check "one fault injected" 1 (Faults.injected handle);
  checkb "impairment detached after the window" true
    (Link.impairment link = None);
  let lost =
    Obs.Registry.counter ~labels:[ ("target", "wire") ]
      "netsim.faults.lost_packets"
  in
  checkb "lost packets flushed to metrics" true (Obs.Registry.count lost >= 10)

(* ---------- crash, wipe and restart ---------- *)

let crash_wipe_and_restart_hooks () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo ~latency:0.0001 a b);
  Topology.compute_routes topo;
  let got = ref 0 in
  let install () = Node.on_udp b ~port:7 (fun _ _ -> incr got) in
  install ();
  let scenario =
    Faults.scenario_of_events ~seed:1
      [ fevent ~at:0.5 ~until:1.0 ~target:(Faults.Tnode "b")
          (Faults.Crash { wipe = true }) ]
  in
  let handle = Faults.arm topo scenario in
  let restarted = ref 0 in
  Faults.on_restart handle (fun node ->
      incr restarted;
      checkb "restart hook sees the node" true (node == b);
      install ());
  let send_at t =
    Engine.schedule (Topology.engine topo) ~at:t (fun () ->
        Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7
          Payload.empty)
  in
  send_at 0.2;
  (* down: dropped at the dead node *)
  send_at 0.7;
  (* back up, handler reinstalled by the restart hook *)
  send_at 1.2;
  Topology.run topo;
  check "delivered before and after the crash" 2 !got;
  check "restart hook ran once" 1 !restarted;
  checkb "node is back up" true (Node.is_up b)

(* ---------- reconvergence around dead routers ---------- *)

let reroute_around_failures () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let r1 = Topology.add_host topo "r1" "10.0.0.254" in
  let r2 = Topology.add_host topo "r2" "10.0.0.253" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let l_a1 = Topology.connect topo ~name:"a-r1" ~latency:0.001 a r1 in
  ignore (Topology.connect topo ~name:"r1-b" ~latency:0.001 r1 b);
  let l_a2 = Topology.connect topo ~name:"a-r2" ~latency:0.001 a r2 in
  ignore (Topology.connect topo ~name:"r2-b" ~latency:0.001 r2 b);
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  (* Cut each access link in turn through the fault plane (whose events
     reconverge the routes at both window edges): whichever path was in
     use, one of the cuts forces the routes onto the other. *)
  let scenario =
    Faults.scenario_of_events
      [
        fevent ~at:0.5 ~until:1.5 ~target:(Faults.Tlink "a-r1")
          Faults.Link_down;
        fevent ~at:2.0 ~until:3.0 ~target:(Faults.Tlink "a-r2")
          Faults.Link_down;
      ]
  in
  ignore (Faults.arm topo scenario);
  let send_at t =
    Engine.schedule (Topology.engine topo) ~at:t (fun () ->
        Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7
          Payload.empty)
  in
  send_at 0.2;
  send_at 1.0;
  (* a-r1 down: must go via r2 *)
  send_at 2.5;
  (* a-r2 down: must go via r1 *)
  Topology.run topo;
  check "delivered around both cuts" 3 !got;
  checkb "links restored" true (Link.is_up l_a1 && Link.is_up l_a2)

let crashed_router_clears_routes () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let r = Topology.add_host topo "r" "10.0.0.254" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo ~latency:0.001 a r);
  ignore (Topology.connect topo ~latency:0.001 r b);
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  let scenario =
    Faults.scenario_of_events
      [ fevent ~at:0.5 ~until:1.0 ~target:(Faults.Tnode "r")
          (Faults.Crash { wipe = false }) ]
  in
  ignore (Faults.arm topo scenario);
  let send_at t =
    Engine.schedule (Topology.engine topo) ~at:t (fun () ->
        Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7
          Payload.empty)
  in
  send_at 0.2;
  send_at 0.7;
  (* no route: the router is down *)
  send_at 1.2;
  Topology.run topo;
  check "delivered before and after the crash window" 2 !got

(* ---------- Reliable: capped backoff and the retry budget ---------- *)

let backoff_budget_aborts_cleanly () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo a b in
  Topology.compute_routes topo;
  ignore (Receiver.listen b ~port:9 ~on_message:(fun _ -> ()) ());
  let abort_reason = ref None in
  let sender =
    Sender.connect ~rto:0.1 ~max_rto:0.4 ~retry_budget:3
      ~on_abort:(fun reason -> abort_reason := Some reason)
      a ~dst:(Node.addr b) ~dst_port:9 ~src_port:9 ()
  in
  Link.set_up link false;
  for _ = 1 to 5 do
    Sender.send sender Payload.empty
  done;
  Topology.run topo;
  checkb "aborted" true (Sender.aborted sender);
  check "window discarded" 0 (Sender.unacked sender);
  checkb "abort reason reported" true (!abort_reason <> None);
  (* Timeout chain: 0.1 + 0.2 + 0.4 (capped) + 0.4 = exponential backoff
     with the cap, then the fourth barren timeout exhausts budget 3. *)
  checkf "abort time shows capped backoff" 1.1
    (Engine.now (Topology.engine topo));
  (* Aborted stream stays dead. *)
  Link.set_up link true;
  Sender.send sender Payload.empty;
  Topology.run topo;
  checkb "send after abort is a no-op" true (Sender.unacked sender = 0)

let backoff_resets_on_progress () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo ~latency:0.001 a b in
  Topology.compute_routes topo;
  let delivered = ref 0 in
  ignore (Receiver.listen b ~port:9 ~on_message:(fun _ -> incr delivered) ());
  let sender =
    Sender.connect ~rto:0.1 ~max_rto:0.4 ~retry_budget:20 a
      ~dst:(Node.addr b) ~dst_port:9 ~src_port:9 ()
  in
  (* Outage shorter than the budget: the stream must recover and deliver
     everything exactly once. *)
  Link.set_up link false;
  for _ = 1 to 10 do
    Sender.send sender Payload.empty
  done;
  Engine.schedule (Topology.engine topo) ~at:0.9 (fun () ->
      Link.set_up link true);
  Topology.run topo;
  checkb "not aborted" true (not (Sender.aborted sender));
  check "all delivered" 10 !delivered;
  check "window drained" 0 (Sender.unacked sender)

(* ---------- deploy: aborted streams surface as outcomes ---------- *)

let counter_asp =
  "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"

let controller_reports_abort () =
  let topo = Topology.create () in
  let ctl = Topology.add_host topo "ctl" "10.0.0.1" in
  let target = Topology.add_host topo "target" "10.0.0.2" in
  let link = Topology.connect topo ctl target in
  Topology.compute_routes topo;
  ignore (Daemon.start target ());
  let controller =
    Controller.create ~rto:0.1 ~max_rto:0.4 ~retry_budget:3 ctl ()
  in
  Link.set_up link false;
  let result = ref None in
  Controller.deploy controller ~target:(Node.addr target) ~name:"counter"
    ~source:counter_asp
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  Topology.run topo;
  (match !result with
  | Some (Controller.Aborted { reason }) ->
      checkb "abort reason nonempty" true (String.length reason > 0)
  | Some outcome ->
      Alcotest.failf "expected Aborted, got %s"
        (Controller.outcome_to_string outcome)
  | None -> Alcotest.fail "deploy never settled");
  let aborts =
    Obs.Registry.counter ~labels:[ ("controller", "ctl") ]
      "deploy.controller.aborts"
  in
  checkb "abort counted" true (Obs.Registry.count aborts >= 1);
  (* The controller must still work against the same target afterwards:
     aborted connections may not poison later deployments. *)
  Link.set_up link true;
  let result2 = ref None in
  Controller.deploy controller ~target:(Node.addr target) ~name:"counter"
    ~source:counter_asp
    ~on_done:(fun outcome -> result2 := Some outcome)
    ();
  Topology.run topo;
  checkb "redeploy after recovery acks" true
    (match !result2 with Some (Controller.Acked _) -> true | _ -> false)

(* ---------- property: streams finish or abort under any scenario ---------- *)

(* Random bounded fault scenarios (loss, flaps, router crashes,
   congestion -- not corruption: Reliable has no checksum, so a corrupted
   ACK is indistinguishable from a real one by design) against a relay
   topology.  Whatever happens, a budgeted stream must end in exactly one
   of two states: everything delivered in order exactly once, or cleanly
   aborted with an empty window.  No hung windows, no duplicates. *)

let gen_scenario =
  QCheck.Gen.(
    let time = float_bound_inclusive 3.0 in
    let duration = map (fun d -> 0.1 +. d) (float_bound_inclusive 1.5) in
    let bounded_event =
      oneof
        [
          map2
            (fun at d ->
              fevent ~at ~until:(at +. d)
                ~target:(Faults.Tlink (if int_of_float (d *. 10.) mod 2 = 0 then "left" else "right"))
                Faults.Link_down)
            time duration;
          map3
            (fun at d rate ->
              fevent ~at ~until:(at +. d) ~target:(Faults.Tlink "left")
                (Faults.Loss (0.4 *. rate)))
            time duration (float_bound_inclusive 1.0);
          map2
            (fun at d ->
              fevent ~at ~until:(at +. d) ~target:(Faults.Tnode "router")
                (Faults.Crash { wipe = false }))
            time duration;
          map2
            (fun at d ->
              fevent ~at ~until:(at +. d) ~target:(Faults.Tlink "right")
                (Faults.Congest { bandwidth_factor = 0.3; queue_factor = 0.5 }))
            time duration;
          map (fun at -> fevent ~at Faults.Reroute) time;
        ]
    in
    let permanent_cut =
      map
        (fun at -> fevent ~at ~target:(Faults.Tlink "left") Faults.Link_down)
        time
    in
    map3
      (fun seed events cut ->
        Faults.scenario_of_events ~seed (events @ cut))
      (int_bound 10_000)
      (list_size (int_range 0 6) bounded_event)
      (oneof [ return []; map (fun e -> [ e ]) permanent_cut ]))

let prop_stream_finishes_or_aborts =
  QCheck.Test.make ~count:60 ~name:"reliable stream finishes or aborts under faults"
    (QCheck.make gen_scenario)
    (fun scenario ->
      let topo = Topology.create () in
      let a = Topology.add_host topo "a" "10.0.0.1" in
      let router = Topology.add_host topo "router" "10.0.0.254" in
      let b = Topology.add_host topo "b" "10.0.0.2" in
      ignore (Topology.connect topo ~name:"left" ~latency:0.002 a router);
      ignore (Topology.connect topo ~name:"right" ~latency:0.002 router b);
      Topology.compute_routes topo;
      ignore (Faults.arm topo scenario);
      let delivered = ref [] in
      let receiver =
        Receiver.listen b ~port:9 ~on_message:(fun payload ->
            delivered := Payload.get_u32 payload 0 :: !delivered)
          ()
      in
      let sent = 20 in
      let sender =
        Sender.connect ~rto:0.05 ~max_rto:0.5 ~retry_budget:8 a
          ~dst:(Node.addr b) ~dst_port:9 ~src_port:9 ()
      in
      for i = 0 to sent - 1 do
        let w = Payload.Writer.create () in
        Payload.Writer.u32 w i;
        Sender.send sender (Payload.Writer.finish w)
      done;
      (* The engine must drain: no hung timers, no forever-rearmed
         retransmission loops. *)
      Topology.run ~limit:2_000_000 topo;
      let order = List.rev !delivered in
      let in_order_prefix =
        List.for_all2 ( = ) order (List.init (List.length order) Fun.id)
      in
      let drained = Sender.unacked sender = 0 in
      let complete = Receiver.delivered receiver = sent in
      if not in_order_prefix then
        QCheck.Test.fail_report "delivery out of order or duplicated";
      if not drained then QCheck.Test.fail_report "hung window";
      if Sender.aborted sender then true
      else if complete then true
      else
        QCheck.Test.fail_reportf
          "stream neither complete (%d/%d) nor aborted"
          (Receiver.delivered receiver)
          sent)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_stream_finishes_or_aborts ]
  in
  Alcotest.run "faults"
    [
      ( "link",
        [
          Alcotest.test_case "cut drops in-flight packets" `Quick
            link_cut_drops_in_flight;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "grammar round-trip" `Quick parse_scenario_grammar;
          Alcotest.test_case "errors name the line" `Quick
            parse_scenario_errors;
          Alcotest.test_case "arm rejects unknown targets" `Quick
            arm_rejects_unknown_target;
          Alcotest.test_case "empty scenario golden parity" `Quick
            empty_scenario_golden_parity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "congestion restores the medium" `Quick
            congest_restores_medium;
          Alcotest.test_case "loss window counts and detaches" `Quick
            loss_window_counts_and_detaches;
          Alcotest.test_case "crash-wipe and restart hooks" `Quick
            crash_wipe_and_restart_hooks;
          Alcotest.test_case "reroutes around failures" `Quick
            reroute_around_failures;
          Alcotest.test_case "crashed router clears routes" `Quick
            crashed_router_clears_routes;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "budget aborts cleanly with capped backoff"
            `Quick backoff_budget_aborts_cleanly;
          Alcotest.test_case "backoff resets on progress" `Quick
            backoff_resets_on_progress;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "controller reports aborted streams" `Quick
            controller_reports_abort;
        ] );
      ("properties", qsuite);
    ]
