(* Property-based tests (qcheck): data-structure invariants, codec
   roundtrips, and — most valuable — differential testing of the three
   execution backends on randomly generated PLAN-P expressions. *)

module Q = QCheck
module Ast = Planp.Ast
module Value = Planp_runtime.Value
module World = Planp_runtime.World
module Interp = Planp_runtime.Interp
module Specialize = Planp_jit.Specialize
module Bytecomp = Planp_jit.Bytecomp
module Vm = Planp_jit.Vm
module Payload = Netsim.Payload
module Audio_frame = Planp_runtime.Audio_frame

let () = Planp_runtime.Prims.install ()

(* ---------- simple invariants ---------- *)

let addr_roundtrip =
  Q.Test.make ~name:"addr: octets roundtrip through string" ~count:500
    Q.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c, d) ->
      let addr = Netsim.Addr.of_octets a b c d in
      Netsim.Addr.of_string (Netsim.Addr.to_string addr) = addr)

let heap_sorts =
  Q.Test.make ~name:"heap: pops in nondecreasing time order" ~count:200
    Q.(list (float_bound_inclusive 1000.0))
    (fun times ->
      let heap = Netsim.Heap.create () in
      List.iter (fun t -> Netsim.Heap.add heap ~time:t ()) times;
      let rec drain last =
        match Netsim.Heap.pop heap with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let sched_matches_reference_model =
  (* Differential test of the calendar queue against a sorted-list model
     under random interleavings of add and pop. Times sit on a coarse grid
     so equal-time ties are frequent (exercising FIFO order), and the tiny
     8-bucket wheel forces constant horizon overflow and rotation. *)
  let op_gen =
    Q.Gen.(
      frequency
        [ (3, map (fun n -> `Add (float_of_int n /. 4.0)) (int_bound 40));
          (2, return `Pop) ])
  in
  Q.Test.make ~name:"sched: interleaved add/pop matches sorted reference"
    ~count:300
    (Q.make Q.Gen.(list_size (int_range 0 200) op_gen))
    (fun ops ->
      let sched = Netsim.Sched.create ~nbuckets:8 ~dummy:(-1) () in
      let cell = { Netsim.Sched.v = 0.0 } in
      let model = ref [] (* sorted by (time, insertion order) *) in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Add time ->
              let id = !next in
              incr next;
              Netsim.Sched.add sched ~time id;
              let rec ins = function
                | (t', id') :: rest when t' <= time -> (t', id') :: ins rest
                | rest -> (time, id) :: rest
              in
              model := ins !model;
              true
          | `Pop -> (
              match !model with
              | [] -> Netsim.Sched.is_empty sched
              | (t, id) :: rest ->
                  model := rest;
                  (not (Netsim.Sched.is_empty sched))
                  && Netsim.Sched.pop sched ~into:cell = id
                  && cell.Netsim.Sched.v = t))
        ops
      && Netsim.Sched.size sched = List.length !model)

let bucket_int_float_parity =
  (* The integer hot-path bucketing must agree with the float reference on
     every int, especially at the power-of-two slot boundaries. *)
  Q.Test.make ~name:"registry: bucket_of_int agrees with bucket_of" ~count:500
    (Q.make
       Q.Gen.(
         oneof
           [ int_bound 1_000_000;
             map (fun k -> (1 lsl k) - 1) (int_range 0 52);
             map (fun k -> 1 lsl k) (int_range 0 52);
             map (fun k -> (1 lsl k) + 1) (int_range 0 51);
             map Int.neg (int_bound 1000) ]))
    (fun v ->
      Obs.Registry.bucket_of_int v = Obs.Registry.bucket_of (float_of_int v))

let payload_u32_roundtrip =
  Q.Test.make ~name:"payload: u32 write/read roundtrip" ~count:500
    Q.(list_of_size (Q.Gen.int_range 0 20) (int_bound 0xFFFFFF))
    (fun values ->
      let w = Payload.Writer.create () in
      List.iter (Payload.Writer.u32 w) values;
      let r = Payload.Reader.create (Payload.Writer.finish w) in
      List.for_all (fun v -> Payload.Reader.u32 r = v) values
      && Payload.Reader.remaining r = 0)

let audio_frame_roundtrip =
  let sample = Q.Gen.int_range (-32768) 32767 in
  Q.Test.make ~name:"audio: encode/decode roundtrip (stereo16)" ~count:200
    (Q.make
       Q.Gen.(
         pair (int_range 0 100000) (list_size (int_range 0 64) (pair sample sample))))
    (fun (seq, pairs) ->
      let samples = Array.of_list (List.concat_map (fun (l, r) -> [ l; r ]) pairs) in
      let frame = { Audio_frame.seq; quality = Audio_frame.Stereo16; samples } in
      match Audio_frame.decode (Audio_frame.encode frame) with
      | Some decoded -> Audio_frame.equal frame decoded
      | None -> false)

let audio_degrade_size =
  Q.Test.make ~name:"audio: degradation shrinks the wire size" ~count:100
    Q.(int_range 1 200)
    (fun frames ->
      let frame = Audio_frame.synth ~seq:0 ~frames ~phase:frames in
      let size q =
        Payload.length (Audio_frame.encode (Audio_frame.degrade frame q))
      in
      size Audio_frame.Stereo16 > size Audio_frame.Mono16
      && size Audio_frame.Mono16 > size Audio_frame.Mono8)

let zipf_in_range =
  Q.Test.make ~name:"rng: zipf stays in 1..n" ~count:200
    Q.(pair (int_range 1 50) small_int)
    (fun (n, seed) ->
      let rng = Asp.Rng.create ~seed:(seed + 1) in
      let rank = Asp.Rng.zipf rng ~n ~alpha:1.0 in
      rank >= 1 && rank <= n)

let file_sizes_bounded =
  Q.Test.make ~name:"http: file sizes within catalog bounds" ~count:300
    Q.small_int
    (fun file_id ->
      let size = Asp.Http_app.file_size file_id in
      size >= 256 && size <= 262_144)

(* ---------- generated PLAN-P expressions ---------- *)

(* Closed, well-typed expressions of type int, with let-bound variables,
   conditionals, arithmetic (division always wrapped in a DivByZero
   handler), strings reduced back to ints via strlen, and primitive calls.
   Depth-bounded so generation terminates. *)

let loc = Planp.Loc.dummy
let mk d = Ast.mk loc d
let int_lit n = mk (Ast.Int n)

let rec gen_int env depth st =
  let open Q.Gen in
  let leaf =
    if env = [] then map (fun n -> int_lit n) (int_range (-50) 50)
    else
      frequency
        [ (2, map (fun n -> int_lit n) (int_range (-50) 50));
          (1, map (fun name -> mk (Ast.Var name)) (oneofl env)) ]
  in
  if depth <= 0 then leaf st
  else
    frequency
      [
        (2, leaf);
        ( 3,
          map3
            (fun op a b -> mk (Ast.Binop (op, a, b)))
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
            (gen_int env (depth - 1))
            (gen_int env (depth - 1)) );
        ( 1,
          (* division guarded by a handler *)
          map2
            (fun a b ->
              mk
                (Ast.Try
                   ( mk (Ast.Binop (Ast.Div, a, b)),
                     [ ("DivByZero", int_lit 999) ] )))
            (gen_int env (depth - 1))
            (gen_int env (depth - 1)) );
        ( 2,
          map3
            (fun c a b -> mk (Ast.If (c, a, b)))
            (gen_bool env (depth - 1))
            (gen_int env (depth - 1))
            (gen_int env (depth - 1)) );
        ( 2,
          (* let val v<k> = e1 in ... v<k> ... *)
          let name = Printf.sprintf "v%d" (List.length env) in
          map2
            (fun bound body ->
              mk
                (Ast.Let
                   ( [ { Ast.bind_name = name; bind_type = Planp.Ptype.Tint;
                         bind_expr = bound } ],
                     body )))
            (gen_int env (depth - 1))
            (gen_int (name :: env) (depth - 1)) );
        ( 1,
          map
            (fun a -> mk (Ast.Call ("abs", [ a ])))
            (gen_int env (depth - 1)) );
        ( 1,
          map2
            (fun a b -> mk (Ast.Call ("min", [ a; b ])))
            (gen_int env (depth - 1))
            (gen_int env (depth - 1)) );
        ( 1,
          map
            (fun a -> mk (Ast.Call ("strlen", [ mk (Ast.Call ("itos", [ a ])) ])))
            (gen_int env (depth - 1)) );
      ]
      st

and gen_bool env depth st =
  let open Q.Gen in
  if depth <= 0 then map (fun b -> mk (Ast.Bool b)) bool st
  else
    frequency
      [
        (1, map (fun b -> mk (Ast.Bool b)) bool);
        ( 3,
          map3
            (fun op a b -> mk (Ast.Binop (op, a, b)))
            (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ])
            (gen_int env (depth - 1))
            (gen_int env (depth - 1)) );
        ( 2,
          map3
            (fun op a b -> mk (Ast.Binop (op, a, b)))
            (oneofl [ Ast.And; Ast.Or ])
            (gen_bool env (depth - 1))
            (gen_bool env (depth - 1)) );
        (1, map (fun a -> mk (Ast.Unop (Ast.Not, a))) (gen_bool env (depth - 1)));
      ]
      st

let expr_arbitrary =
  Q.make
    ~print:(fun e -> Planp.Pretty.expr_to_string e)
    (Q.Gen.sized_size (Q.Gen.int_range 0 5) (fun depth -> gen_int [] depth))

let eval_three expr =
  let world, _, _ = World.dummy () in
  let reference =
    try Ok (Interp.eval_const ~world ~globals:[] expr)
    with Value.Planp_raise e -> Error e
  in
  let jit =
    try Ok (Specialize.run (Specialize.compile_expr ~globals:[] ~params:[] expr) world [])
    with Value.Planp_raise e -> Error e
  in
  let vm =
    try Ok (Vm.call (Bytecomp.compile_expr ~globals:[] ~params:[] expr) ~fn:0 world [||])
    with Value.Planp_raise e -> Error e
  in
  (reference, jit, vm)

let eval_folded expr =
  let world, _, _ = World.dummy () in
  let folded = Planp_jit.Fold.expr ~globals:[] expr in
  ( (try Ok (Interp.eval_const ~world ~globals:[] folded)
     with Value.Planp_raise e -> Error e),
    folded )

let result_equal a b =
  match (a, b) with
  | Ok va, Ok vb -> Value.equal va vb
  | Error ea, Error eb -> String.equal ea eb
  | Ok _, Error _ | Error _, Ok _ -> false

let backends_differential =
  Q.Test.make
    ~name:"backends: interpreter, JIT and VM agree on generated expressions"
    ~count:500 expr_arbitrary
    (fun expr ->
      let reference, jit, vm = eval_three expr in
      result_equal reference jit && result_equal reference vm)

let fold_differential =
  Q.Test.make
    ~name:"fold: constant folding preserves evaluation and never grows the AST"
    ~count:500 expr_arbitrary
    (fun expr ->
      let reference, _, _ = eval_three expr in
      let folded_result, folded = eval_folded expr in
      result_equal reference folded_result
      && Planp_jit.Fold.count_nodes folded <= Planp_jit.Fold.count_nodes expr)

let pretty_parse_roundtrip =
  Q.Test.make ~name:"pretty: print/parse/print is a fixed point" ~count:300
    expr_arbitrary
    (fun expr ->
      let printed = Planp.Pretty.expr_to_string expr in
      match Planp.Parser.parse_expr printed with
      | reparsed -> String.equal printed (Planp.Pretty.expr_to_string reparsed)
      | exception _ -> false)

let reparsed_evaluates_same =
  Q.Test.make ~name:"pretty: reparsed expression evaluates identically"
    ~count:300 expr_arbitrary
    (fun expr ->
      let printed = Planp.Pretty.expr_to_string expr in
      let reparsed = Planp.Parser.parse_expr printed in
      let world, _, _ = World.dummy () in
      let run e =
        try Ok (Interp.eval_const ~world ~globals:[] e)
        with Value.Planp_raise exn_name -> Error exn_name
      in
      result_equal (run expr) (run reparsed))

(* ---------- packet codec ---------- *)

let scalar_component =
  Q.Gen.oneof
    [
      Q.Gen.map (fun n -> Value.Vint n) (Q.Gen.int_range (-1000000) 1000000);
      Q.Gen.map (fun b -> Value.Vbool b) Q.Gen.bool;
      Q.Gen.map
        (fun c -> Value.Vchar (Char.chr c))
        (Q.Gen.int_range 0 255);
      Q.Gen.map (fun h -> Value.Vhost h) (Q.Gen.int_bound 0xFFFFFF);
      Q.Gen.map
        (fun s -> Value.Vstring s)
        (Q.Gen.string_size ~gen:Q.Gen.printable (Q.Gen.int_range 0 20));
    ]

let type_of_component = function
  | Value.Vint _ -> Planp.Ptype.Tint
  | Value.Vbool _ -> Planp.Ptype.Tbool
  | Value.Vchar _ -> Planp.Ptype.Tchar
  | Value.Vhost _ -> Planp.Ptype.Thost
  | Value.Vstring _ -> Planp.Ptype.Tstring
  | _ -> assert false

let codec_roundtrip =
  Q.Test.make ~name:"codec: scalar payload encode/decode roundtrip" ~count:300
    (Q.make Q.Gen.(list_size (int_range 1 6) scalar_component))
    (fun components ->
      let ip = Value.Vip { Value.vsrc = 1; vdst = 2; vttl = 33 } in
      let udp = Value.Vudp { Netsim.Packet.udp_src = 7; udp_dst = 9 } in
      let value = Value.Vtuple (Array.of_list (ip :: udp :: components)) in
      let ty =
        Planp.Ptype.Ttuple
          (Planp.Ptype.Tip :: Planp.Ptype.Tudp
          :: List.map type_of_component components)
      in
      let packet = Planp_runtime.Pkt_codec.encode ~chan:"network" value in
      match Planp_runtime.Pkt_codec.decode ty packet with
      | Some decoded -> Value.equal value decoded
      | None -> false)

(* Feed random bytes to the front end: it must either parse or raise the
   documented Error exceptions — never crash, never loop. *)
let frontend_fuzz =
  Q.Test.make ~name:"frontend: random input never crashes lexer/parser"
    ~count:1000
    Q.(string_gen_of_size (Q.Gen.int_range 0 80) (Q.Gen.char_range '\000' '\255'))
    (fun junk ->
      match Planp.Parser.parse junk with
      | _ -> true
      | exception Planp.Lexer.Error _ -> true
      | exception Planp.Parser.Error _ -> true)

(* Near-miss fuzzing: mutate a valid program by one byte. *)
let frontend_mutation_fuzz =
  let base =
    Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
      ~servers:("10.3.0.1", "10.3.0.2") ()
  in
  Q.Test.make ~name:"frontend: one-byte mutations never crash the pipeline"
    ~count:500
    Q.(pair (int_bound (String.length base - 1)) (int_range 1 255))
    (fun (pos, delta) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos
        (Char.chr ((Char.code (Bytes.get mutated pos) + delta) mod 256));
      let source = Bytes.to_string mutated in
      match Extnet.check_source source with
      | Ok checked ->
          (* If it still type checks, the verifier must not crash either. *)
          ignore
            (Planp_analysis.Verifier.verify checked.Planp.Typecheck.program);
          true
      | Error _ -> true)

let flowstat_rate_nonnegative =
  Q.Test.make ~name:"flowstat: rate is nonnegative and bounded by input"
    ~count:200
    Q.(list_of_size (Q.Gen.int_range 0 50) (pair (float_bound_inclusive 10.0) (int_bound 5000)))
    (fun samples ->
      let stat = Netsim.Flowstat.create ~window:1.0 () in
      let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) samples in
      List.iter (fun (t, b) -> Netsim.Flowstat.record stat ~now:t b) sorted;
      let rate = Netsim.Flowstat.rate_bps stat ~now:10.0 in
      let total_bits = 8 * List.fold_left (fun acc (_, b) -> acc + b) 0 sorted in
      rate >= 0.0 && rate <= float_of_int total_bits /. 1.0 +. 1e-6)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [
        addr_roundtrip;
        heap_sorts;
        sched_matches_reference_model;
        bucket_int_float_parity;
        payload_u32_roundtrip;
        audio_frame_roundtrip;
        audio_degrade_size;
        zipf_in_range;
        file_sizes_bounded;
        backends_differential;
        fold_differential;
        pretty_parse_roundtrip;
        reparsed_evaluates_same;
        codec_roundtrip;
        frontend_fuzz;
        frontend_mutation_fuzz;
        flowstat_rate_nonnegative;
      ]
  in
  Alcotest.run "properties" [ ("qcheck", suite) ]
