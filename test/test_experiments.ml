(* Integration tests: shortened versions of the paper's three experiments,
   asserting the qualitative results the paper reports. Durations are kept
   small; the full-length runs live in bench/main.ml. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- audio (§3.1, Fig. 6 and 7) ---------- *)

let audio_adaptation_controls_bandwidth () =
  let result = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
  (* Before the load starts the stream runs at CD quality (~178 kB/s);
     under heavy load it must drop to 8-bit mono (~46 kB/s). *)
  let rate_at t =
    let _, rate =
      List.fold_left
        (fun ((best_d, _) as best) (time, rate) ->
          let d = Float.abs (time -. t) in
          if d < best_d then (d, rate) else best)
        (infinity, 0.0) result.Asp.Audio_experiment.series
    in
    rate
  in
  checkb "CD quality before load" true (Float.abs (rate_at 8.0 -. 178.0) < 10.0);
  checkb "8-bit mono under heavy load" true (Float.abs (rate_at 20.0 -. 46.0) < 8.0);
  checkb "16-bit mono under light load" true (Float.abs (rate_at 48.0 -. 90.0) < 10.0);
  check "no silent periods with adaptation" 0
    result.Asp.Audio_experiment.silent_periods;
  check "no drops with adaptation" 0 result.Asp.Audio_experiment.segment_drops;
  check "every frame arrives" result.Asp.Audio_experiment.frames_sent
    result.Asp.Audio_experiment.frames_received;
  let _, m16, m8 = result.Asp.Audio_experiment.wire_quality_counts in
  checkb "degraded frames seen on the wire" true (m16 > 0 && m8 > 0)

let audio_no_adaptation_suffers () =
  let result =
    Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ~adapt:false ())
  in
  checkb "many silent periods" true
    (result.Asp.Audio_experiment.silent_periods > 50);
  checkb "drops occurred" true (result.Asp.Audio_experiment.segment_drops > 100);
  checkb "frames lost" true
    (result.Asp.Audio_experiment.frames_received
    < result.Asp.Audio_experiment.frames_sent)

let audio_per_segment_adaptation () =
  (* The paper's core argument for in-router adaptation (3.1): "clients on
     different paths in the network can receive different levels of
     quality depending only on the traffic on that path" — impossible for
     end-to-end adaptation, which degrades everyone to the slowest
     segment. Two segments: one congested, one idle; each behind its own
     adapting router. *)
  (* source - r0 (plain branch) - { r1 -> loaded segment, r2 -> idle
     segment }: each adapting router feeds exactly one segment, so its
     decision affects only that path. *)
  let topo = Netsim.Topology.create () in
  let source_node = Netsim.Topology.add_host topo "src" "10.1.0.1" in
  let r0 = Netsim.Topology.add_host topo "r0" "10.1.0.252" in
  let r1 = Netsim.Topology.add_host topo "r1" "10.1.0.254" in
  let r2 = Netsim.Topology.add_host topo "r2" "10.1.0.253" in
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~latency:0.0005
       source_node r0);
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~latency:0.0005 r0 r1);
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~latency:0.0005 r0 r2);
  let seg1 = Netsim.Topology.segment topo ~name:"loaded" ~bandwidth_bps:10e6 () in
  let seg2 = Netsim.Topology.segment topo ~name:"idle" ~bandwidth_bps:10e6 () in
  let r1_if = Netsim.Topology.attach topo seg1 r1 in
  let r2_if = Netsim.Topology.attach topo seg2 r2 in
  let c1 = Netsim.Topology.add_host topo "c1" "10.2.0.1" in
  let c2 = Netsim.Topology.add_host topo "c2" "10.3.0.1" in
  let sink = Netsim.Topology.add_host topo "sink" "10.2.0.99" in
  let lg = Netsim.Topology.add_host topo "lg" "10.2.0.98" in
  ignore (Netsim.Topology.attach topo seg1 c1);
  ignore (Netsim.Topology.attach topo seg1 sink);
  ignore (Netsim.Topology.attach topo seg1 lg);
  ignore (Netsim.Topology.attach topo seg2 c2);
  Netsim.Topology.compute_routes topo;
  (* wire quality observed per segment *)
  let quality_counts segment =
    let s16 = ref 0 and degraded = ref 0 in
    Netsim.Segment.set_tap segment (fun ~at:_ ~l2_dst:_ packet ->
        match packet.Netsim.Packet.l4 with
        | Netsim.Packet.Udp { Netsim.Packet.udp_dst; _ }
          when udp_dst = Asp.Audio_app.audio_port -> (
            match Planp_runtime.Audio_frame.decode packet.Netsim.Packet.body with
            | Some frame ->
                if frame.Planp_runtime.Audio_frame.quality
                   = Planp_runtime.Audio_frame.Stereo16
                then incr s16
                else incr degraded
            | None -> ())
        | _ -> ());
    (s16, degraded)
  in
  let s16_1, degraded_1 = quality_counts seg1 in
  let _s16_2, degraded_2 = quality_counts seg2 in
  let client1 = Asp.Audio_app.Client.attach c1 () in
  let client2 = Asp.Audio_app.Client.attach c2 () in
  ignore (Asp.Audio_app.Source.start source_node ~until:20.0 ());
  ignore
    (Asp.Loadgen.start lg ~dst:(Extnet.Node.addr sink)
       ~schedule:[ (2.0, 1150.0) ] ~until:20.0 ());
  List.iter
    (fun (router, iface) ->
      ignore
        (Extnet.load_exn router
           ~source:(Asp.Audio_asp.router_program ~iface ())
           ()))
    [ (r1, r1_if); (r2, r2_if) ];
  List.iter
    (fun client ->
      ignore (Extnet.load_exn client ~source:(Asp.Audio_asp.client_program ()) ()))
    [ c1; c2 ];
  Netsim.Topology.run_until topo ~stop:21.0;
  checkb "loaded segment saw degraded audio" true (!degraded_1 > !s16_1);
  check "idle segment stayed at CD quality" 0 !degraded_2;
  checkb "idle-path client heard everything" true
    (Asp.Audio_app.Client.frames_received client2 >= 995);
  checkb "loaded-path client still heard everything (degraded)" true
    (Asp.Audio_app.Client.frames_received client1 >= 995)

let audio_backend_equivalence () =
  (* The interpreter backend must produce the same adaptation behaviour as
     the JIT (slower in real time, identical in simulated time). *)
  let jit = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
  let interp =
    Asp.Audio_experiment.run
      (Asp.Audio_experiment.quick_config ~backend:Planp_jit.Backends.interp ())
  in
  check "same frames received" jit.Asp.Audio_experiment.frames_received
    interp.Asp.Audio_experiment.frames_received;
  checkb "same wire qualities" true
    (jit.Asp.Audio_experiment.wire_quality_counts
    = interp.Asp.Audio_experiment.wire_quality_counts)

(* ---------- http (§3.2, Fig. 8) ---------- *)

let http_cluster_shape () =
  let config =
    { Asp.Http_experiment.default_config with
      duration = 12.0; warmup = 4.0; client_count = 8; trace_requests = 40_000 }
  in
  let rate setup workers =
    (Asp.Http_experiment.run_point config setup ~workers)
      .Asp.Http_experiment.replies_per_s
  in
  let single = rate Asp.Http_experiment.Single 32 in
  let asp_gw = rate (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) 48 in
  let native_gw = rate Asp.Http_experiment.Native_gateway 48 in
  let disjoint = rate Asp.Http_experiment.Disjoint 48 in
  checkb "single server saturates in a plausible band" true
    (single > 400.0 && single < 900.0);
  (* Paper: ASP gateway within measurement noise of built-in C. *)
  checkb "ASP ~ native" true
    (Float.abs (asp_gw -. native_gw) /. native_gw < 0.05);
  (* Paper: 1.75x a single server. *)
  let ratio = asp_gw /. single in
  checkb "cluster gains ~1.75x over single" true (ratio > 1.5 && ratio < 2.0);
  (* Paper: 85% of two servers with disjoint clients. *)
  let share = asp_gw /. disjoint in
  checkb "~85%% of disjoint" true (share > 0.75 && share < 0.98)

let http_gateway_counts_requests () =
  let config =
    { Asp.Http_experiment.default_config with
      duration = 6.0; warmup = 2.0; trace_requests = 5_000 }
  in
  let point =
    Asp.Http_experiment.run_point config
      (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) ~workers:8
  in
  let s0, s1 = point.Asp.Http_experiment.server_loads in
  checkb "gateway saw every request" true
    (point.Asp.Http_experiment.gateway_requests >= s0 + s1);
  checkb "balanced" true (abs (s0 - s1) <= 1 + ((s0 + s1) / 10))

let whole_stack_is_deterministic () =
  (* The entire simulation stack must be reproducible run to run: no wall
     clock, no Random, no hashtable-iteration dependence in results. *)
  let run () =
    let r = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
    ( r.Asp.Audio_experiment.series,
      r.Asp.Audio_experiment.wire_quality_counts,
      r.Asp.Audio_experiment.silent_periods )
  in
  let a = run () and b = run () in
  checkb "identical audio runs" true (a = b);
  let http () =
    let config =
      { Asp.Http_experiment.default_config with
        duration = 8.0; warmup = 3.0; trace_requests = 5_000 }
    in
    let p =
      Asp.Http_experiment.run_point config
        (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) ~workers:8
    in
    (p.Asp.Http_experiment.replies_per_s, p.Asp.Http_experiment.server_loads)
  in
  checkb "identical http runs" true (http () = http ())

(* ---------- mpeg (§3.3) ---------- *)

let mpeg_single_connection () =
  let result = Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ()) in
  check "one server connection" 1 result.Asp.Mpeg_experiment.server_streams;
  (match result.Asp.Mpeg_experiment.clients_shared with
  | [ Some false; Some true; Some true ] -> ()
  | _ -> Alcotest.fail "client 1 direct, clients 2 and 3 shared");
  (* every client keeps receiving from its join point *)
  (match result.Asp.Mpeg_experiment.client_frames with
  | [ c1; c2; c3 ] ->
      check "client 1 gets the whole movie" 240 c1;
      checkb "client 2 joins mid-stream" true (c2 > 100 && c2 < 240);
      checkb "client 3 joins later" true (c3 > 50 && c3 < c2)
  | _ -> Alcotest.fail "three clients");
  result.Asp.Mpeg_experiment.segment_video_bytes |> fun shared_bytes ->
  let baseline =
    Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ~with_asps:false ())
  in
  check "baseline opens three connections" 3
    baseline.Asp.Mpeg_experiment.server_streams;
  checkb "ASPs cut segment video traffic to about a third" true
    (float_of_int shared_bytes
    < 0.45 *. float_of_int baseline.Asp.Mpeg_experiment.segment_video_bytes)

let mpeg_monitor_tracks_connections () =
  (* A lone client gets "no connection" from the monitor and goes direct. *)
  let result =
    Asp.Mpeg_experiment.run
      { (Asp.Mpeg_experiment.default_config ()) with client_starts = [ 0.5 ] }
  in
  check "single client, single stream" 1 result.Asp.Mpeg_experiment.server_streams;
  match result.Asp.Mpeg_experiment.clients_shared with
  | [ Some false ] -> ()
  | _ -> Alcotest.fail "lone client must go direct"

let mpeg_backend_equivalence () =
  let run backend =
    let r = Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ~backend ()) in
    ( r.Asp.Mpeg_experiment.server_streams,
      r.Asp.Mpeg_experiment.client_frames,
      r.Asp.Mpeg_experiment.clients_shared )
  in
  let jit = run Planp_jit.Backends.jit in
  checkb "interp behaves identically" true (run Planp_jit.Backends.interp = jit);
  checkb "bytecode behaves identically" true
    (run Planp_jit.Backends.bytecode = jit)

let mpeg_teardown_expires_entries () =
  (* The server's TEARDOWN removes the monitor entry: a client arriving
     after the movie finished must open its own connection instead of
     capturing a dead stream. Movie = 48 frames = 2 s; second client at
     t = 6 s. *)
  let result =
    Asp.Mpeg_experiment.run
      { (Asp.Mpeg_experiment.default_config ()) with
        movie_frames = 48; client_starts = [ 0.5; 6.0 ]; duration = 12.0 }
  in
  check "two connections" 2 result.Asp.Mpeg_experiment.server_streams;
  (match result.Asp.Mpeg_experiment.clients_shared with
  | [ Some false; Some false ] -> ()
  | _ -> Alcotest.fail "late client must go direct after teardown");
  match result.Asp.Mpeg_experiment.client_frames with
  | [ c1; c2 ] ->
      check "client 1 full movie" 48 c1;
      check "client 2 full movie too" 48 c2
  | _ -> Alcotest.fail "two clients"

(* ---------- golden parity ---------- *)

(* Bit-exact pinned results for all three experiments, captured from the
   original per-packet binary-heap scheduler before the calendar-queue /
   delivery-ring event core replaced it. Any change that reorders events —
   even among equal-time ties — or perturbs a single float expression on
   the packet path shows up here long before it would surface as a subtly
   different curve in the paper figures. If one of these fails after an
   intentional semantic change, re-capture the constants and say so in the
   commit message. *)

let golden_audio () =
  let r = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
  check "frames sent" 2500 r.Asp.Audio_experiment.frames_sent;
  check "frames received" 2500 r.Asp.Audio_experiment.frames_received;
  check "silent periods" 0 r.Asp.Audio_experiment.silent_periods;
  check "silent frames" 0 r.Asp.Audio_experiment.silent_frames;
  check "segment drops" 0 r.Asp.Audio_experiment.segment_drops;
  let s16, m16, m8 = r.Asp.Audio_experiment.wire_quality_counts in
  check "stereo16 frames on the wire" 534 s16;
  check "mono16 frames on the wire" 1140 m16;
  check "mono8 frames on the wire" 826 m8

let golden_http () =
  let config =
    { Asp.Http_experiment.default_config with
      duration = 8.0; warmup = 3.0; trace_requests = 5_000 }
  in
  let p =
    Asp.Http_experiment.run_point config
      (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) ~workers:8
  in
  Alcotest.(check (float 0.0))
    "replies/s (exact)" 282.80000000000001 p.Asp.Http_experiment.replies_per_s;
  let s0, s1 = p.Asp.Http_experiment.server_loads in
  check "server 0 load" 1151 s0;
  check "server 1 load" 1153 s1;
  check "gateway requests" 2311 p.Asp.Http_experiment.gateway_requests

let golden_mpeg () =
  let r = Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ()) in
  check "server streams" 1 r.Asp.Mpeg_experiment.server_streams;
  check "server frames sent" 240 r.Asp.Mpeg_experiment.server_frames_sent;
  Alcotest.(check (list int))
    "client frames" [ 240; 181; 109 ] r.Asp.Mpeg_experiment.client_frames;
  (match r.Asp.Mpeg_experiment.clients_shared with
  | [ Some false; Some true; Some true ] -> ()
  | _ -> Alcotest.fail "sharing pattern changed");
  check "segment video bytes" 776000 r.Asp.Mpeg_experiment.segment_video_bytes

(* ---------- in-band deployment parity ---------- *)

(* The acceptance bar for the deployment plane: each experiment run with
   its ASPs shipped in-band over the simulated network must report the
   same summary as with them preinstalled. Deployment finishes within
   milliseconds, before any congestion phase. *)

let audio_in_band_parity () =
  let run deploy =
    let r =
      Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ~deploy ())
    in
    ( r.Asp.Audio_experiment.frames_sent,
      r.Asp.Audio_experiment.frames_received,
      r.Asp.Audio_experiment.silent_periods,
      r.Asp.Audio_experiment.silent_frames,
      r.Asp.Audio_experiment.segment_drops,
      r.Asp.Audio_experiment.wire_quality_counts )
  in
  checkb "in-band audio summary matches preinstalled" true
    (run Asp.Deploy_mode.In_band = run Asp.Deploy_mode.Preinstalled)

let http_in_band_parity () =
  let point deploy =
    let config =
      { Asp.Http_experiment.default_config with
        duration = 8.0; warmup = 3.0; trace_requests = 5_000; deploy }
    in
    Asp.Http_experiment.run_point config
      (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) ~workers:8
  in
  let pre = point Asp.Deploy_mode.Preinstalled in
  let inband = point Asp.Deploy_mode.In_band in
  (* Throughput is measured after warmup; the handful of requests retried
     while the gateway ASP was still in flight land well inside it. *)
  checkb "replies/s within 2%" true
    (Float.abs
       (inband.Asp.Http_experiment.replies_per_s
       -. pre.Asp.Http_experiment.replies_per_s)
     /. pre.Asp.Http_experiment.replies_per_s
    < 0.02);
  let s0, s1 = inband.Asp.Http_experiment.server_loads in
  checkb "gateway saw every request" true
    (inband.Asp.Http_experiment.gateway_requests >= s0 + s1);
  checkb "balanced" true (abs (s0 - s1) <= 1 + ((s0 + s1) / 10))

let mpeg_in_band_parity () =
  let run deploy =
    let r =
      Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ~deploy ())
    in
    ( r.Asp.Mpeg_experiment.server_streams,
      r.Asp.Mpeg_experiment.server_frames_sent,
      r.Asp.Mpeg_experiment.client_frames,
      r.Asp.Mpeg_experiment.clients_shared )
  in
  checkb "in-band mpeg summary matches preinstalled" true
    (run Asp.Deploy_mode.In_band = run Asp.Deploy_mode.Preinstalled)

let () =
  Alcotest.run "experiments"
    [
      ( "audio",
        [
          Alcotest.test_case "adaptation controls bandwidth" `Slow
            audio_adaptation_controls_bandwidth;
          Alcotest.test_case "no adaptation suffers" `Slow
            audio_no_adaptation_suffers;
          Alcotest.test_case "per-segment adaptation" `Slow
            audio_per_segment_adaptation;
          Alcotest.test_case "backend equivalence" `Slow audio_backend_equivalence;
        ] );
      ( "http",
        [
          Alcotest.test_case "cluster shape (Fig. 8)" `Slow http_cluster_shape;
          Alcotest.test_case "gateway counts requests" `Slow
            http_gateway_counts_requests;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "whole stack" `Slow whole_stack_is_deterministic;
        ] );
      ( "golden parity",
        [
          Alcotest.test_case "audio" `Slow golden_audio;
          Alcotest.test_case "http" `Slow golden_http;
          Alcotest.test_case "mpeg" `Slow golden_mpeg;
        ] );
      ( "in-band deployment",
        [
          Alcotest.test_case "audio parity" `Slow audio_in_band_parity;
          Alcotest.test_case "http parity" `Slow http_in_band_parity;
          Alcotest.test_case "mpeg parity" `Slow mpeg_in_band_parity;
        ] );
      ( "mpeg",
        [
          Alcotest.test_case "single connection" `Slow mpeg_single_connection;
          Alcotest.test_case "monitor tracks connections" `Slow
            mpeg_monitor_tracks_connections;
          Alcotest.test_case "teardown expires entries" `Slow
            mpeg_teardown_expires_entries;
          Alcotest.test_case "backend equivalence" `Slow mpeg_backend_equivalence;
        ] );
    ]
