(* Tests for the in-band deployment plane (lib/deploy): capsule codec,
   chunk/reassembly, daemon epoch semantics, controller operations, staged
   rollouts, and end-to-end deployment through a lossy link. *)

module Topology = Netsim.Topology
module Node = Netsim.Node
module Engine = Netsim.Engine
module Payload = Netsim.Payload
module Packet = Netsim.Packet
module Link = Netsim.Link
module Runtime = Planp_runtime.Runtime
module Value = Planp_runtime.Value
module Capsule = Deploy.Capsule
module Daemon = Deploy.Daemon
module Controller = Deploy.Controller

let () = Planp_runtime.Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Counts untagged UDP packets in the protocol state; the [step] lets two
   versions of "the same program" be told apart by how fast they count. *)
let counter_asp step =
  Printf.sprintf
    "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + %d, ss))"
    step

(* The verifier cannot prove this terminates globally (unbounded flood), so
   an unauthenticated deployment of it must be NAKed. *)
let flood_asp =
  "channel flood(ps : unit, ss : unit, p : ip*blob) is\n\
   (OnNeighbor(flood, p); (ps, ss))"

let probe daemon =
  Runtime.inject
    (Daemon.runtime daemon)
    (Packet.udp ~src:1 ~dst:2 ~src_port:9 ~dst_port:9 Payload.empty)

let count_of daemon ~name =
  match Daemon.active_program daemon ~name with
  | Some program -> Value.as_int (Runtime.proto_state program)
  | None -> Alcotest.failf "no active program for %s" name

(* ---------- capsule codec ---------- *)

let roundtrip msg =
  match Capsule.decode (Capsule.encode msg) with
  | Some decoded -> decoded = msg
  | None -> false

let capsule_roundtrip () =
  checkb "manifest" true
    (roundtrip
       (Capsule.Manifest
          {
            program = "audio";
            epoch = 7;
            backend = "jit";
            total_chunks = 3;
            total_bytes = 1200;
            checksum = Capsule.checksum "xyz";
            authenticated = true;
            reply_addr = Netsim.Addr.of_string "10.0.0.9";
            reply_port = 52001;
          }));
  checkb "chunk" true
    (roundtrip
       (Capsule.Chunk { program = "audio"; epoch = 7; index = 2; data = "ab\000c" }));
  checkb "empty chunk" true
    (roundtrip (Capsule.Chunk { program = "p"; epoch = 1; index = 0; data = "" }));
  checkb "undeploy" true
    (roundtrip
       (Capsule.Undeploy
          { program = "p"; epoch = 3; reply_addr = 1; reply_port = 52003 }));
  checkb "rollback" true
    (roundtrip
       (Capsule.Rollback
          { program = "p"; epoch = 4; reply_addr = 1; reply_port = 52003 }));
  checkb "ack" true
    (roundtrip
       (Capsule.Ack
          {
            program = "p";
            epoch = 4;
            signature = Capsule.sign ~secret:"s" ~program:"p" ~epoch:4 ~node:2;
            install_latency_us = 1234;
            note = "activated";
          }));
  checkb "nak" true
    (roundtrip (Capsule.Nak { program = "p"; epoch = 4; reason = "stale" }))

let capsule_decode_garbage () =
  checkb "empty" true (Capsule.decode Payload.empty = None);
  checkb "unknown op" true (Capsule.decode (Payload.of_string "\xff") = None);
  checkb "truncated" true (Capsule.decode (Payload.of_string "\001\000\005ab") = None)

let capsule_signature_binds_fields () =
  let sign = Capsule.sign ~secret:"s" ~program:"p" ~epoch:1 ~node:3 in
  checkb "epoch" true (sign <> Capsule.sign ~secret:"s" ~program:"p" ~epoch:2 ~node:3);
  checkb "node" true (sign <> Capsule.sign ~secret:"s" ~program:"p" ~epoch:1 ~node:4);
  checkb "secret" true (sign <> Capsule.sign ~secret:"t" ~program:"p" ~epoch:1 ~node:3);
  checkb "program" true (sign <> Capsule.sign ~secret:"s" ~program:"q" ~epoch:1 ~node:3)

let capsule_rope_payloads () =
  (* Capsule decode and the checksum pipeline must behave identically when
     the wire payload arrives as a non-compacted rope (slices and pending
     concatenations) instead of one flat string. *)
  let source = String.concat "" (List.init 40 (fun i -> Printf.sprintf "line%d;" i)) in
  let msg =
    Capsule.Manifest
      {
        program = "audio";
        epoch = 9;
        backend = "jit";
        total_chunks = 2;
        total_bytes = String.length source;
        checksum = Capsule.checksum source;
        authenticated = false;
        reply_addr = Netsim.Addr.of_string "10.0.0.9";
        reply_port = 52001;
      }
  in
  let wire = Payload.to_string (Capsule.encode msg) in
  let n = String.length wire in
  let as_rope =
    Payload.concat
      [ Payload.of_string (String.sub wire 0 3);
        Payload.sub (Payload.of_string ("pad" ^ wire ^ "pad")) ~pos:6 ~len:(n - 3) ]
  in
  checkb "rope decode" true (Capsule.decode as_rope = Some msg);
  let as_slice =
    Payload.sub (Payload.of_string ("XY" ^ wire)) ~pos:2 ~len:n
  in
  checkb "slice decode" true (Capsule.decode as_slice = Some msg);
  (* the declared checksum still matches after reassembly from chunks *)
  let chunks = Capsule.chunk ~chunk_size:17 source in
  let r =
    Capsule.Reassembly.create
      ~total_chunks:(List.length chunks)
      ~total_bytes:(String.length source)
      ~checksum:(Capsule.checksum source)
  in
  List.iteri
    (fun index data ->
      match Capsule.Reassembly.add r ~index data with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    chunks;
  match Capsule.Reassembly.source r with
  | Ok s -> checks "reassembled source" source s
  | Error e -> Alcotest.fail e

(* ---------- chunk / reassemble ---------- *)

let chunk_reassemble_roundtrip =
  QCheck.Test.make ~name:"chunk/reassemble round-trips under any arrival order"
    ~count:100
    QCheck.(
      triple (string_of_size Gen.(0 -- 2000)) (int_range 1 97) (int_range 0 9999))
    (fun (source, chunk_size, seed) ->
      let chunks = Capsule.chunk ~chunk_size source in
      let n = List.length chunks in
      let order = Array.init n (fun i -> i) in
      (* deterministic shuffle from the seed *)
      let state = ref seed in
      let next bound =
        state := ((!state * 1103515245) + 12345) land 0x3fffffff;
        !state mod bound
      in
      for i = n - 1 downto 1 do
        let j = next (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let indexed = Array.of_list chunks in
      let r =
        Capsule.Reassembly.create ~total_chunks:n
          ~total_bytes:(String.length source)
          ~checksum:(Capsule.checksum source)
      in
      Array.iter
        (fun i ->
          match Capsule.Reassembly.add r ~index:i indexed.(i) with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "add: %s" e)
        order;
      Capsule.Reassembly.complete r
      && Capsule.Reassembly.source r = Ok source)

let reassembly_rejects () =
  let r =
    Capsule.Reassembly.create ~total_chunks:2 ~total_bytes:4
      ~checksum:(Capsule.checksum "abcd")
  in
  checkb "first add" true (Capsule.Reassembly.add r ~index:0 "ab" = Ok ());
  checkb "duplicate" true
    (match Capsule.Reassembly.add r ~index:0 "ab" with
    | Error _ -> true
    | Ok () -> false);
  checkb "out of range" true
    (match Capsule.Reassembly.add r ~index:5 "zz" with
    | Error _ -> true
    | Ok () -> false);
  checkb "incomplete source" true
    (match Capsule.Reassembly.source r with Error _ -> true | Ok _ -> false);
  checkb "second add" true (Capsule.Reassembly.add r ~index:1 "XY" = Ok ());
  checkb "checksum mismatch" true
    (Capsule.Reassembly.source r = Error "checksum mismatch")

(* ---------- topology helpers ---------- *)

let two_nodes () =
  let topo = Topology.create () in
  let ctl = Topology.add_host topo "ctl" "10.0.0.1" in
  let target = Topology.add_host topo "target" "10.0.0.2" in
  let link = Topology.connect topo ctl target in
  Topology.compute_routes topo;
  let daemon = Daemon.start target () in
  let controller = Controller.create ctl () in
  (topo, controller, daemon, link)

let deploy_sync ?backend ?authenticated ?epoch ?timeout ~run topo controller
    ~target ~name ~source () =
  let result = ref None in
  Controller.deploy ?backend ?authenticated ?epoch ?timeout controller ~target
    ~name ~source
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  run topo;
  match !result with
  | Some outcome -> outcome
  | None -> Alcotest.fail "deploy never settled"

let expect_ack = function
  | Controller.Acked { epoch; _ } -> epoch
  | outcome -> Alcotest.failf "expected ACK, got %s" (Controller.outcome_to_string outcome)

let expect_nak = function
  | Controller.Nakked { reason; _ } -> reason
  | outcome -> Alcotest.failf "expected NAK, got %s" (Controller.outcome_to_string outcome)

(* ---------- deploy / hot swap / epochs ---------- *)

let deploy_basic () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
      ~source:(counter_asp 1) ()
  in
  check "epoch 1" 1 (expect_ack outcome);
  check "active epoch" 1
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  checkb "controller agrees" true
    (Controller.epoch_of controller ~target ~name:"counter" = Some 1);
  check "high water" 1 (Daemon.high_water daemon ~name:"counter");
  probe daemon;
  check "version 1 serving" 1 (count_of daemon ~name:"counter");
  checkb "no previous epoch yet" true
    (Daemon.previous_epoch daemon ~name:"counter" = None)

let deploy_hot_swap () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~source:(counter_asp 1) ()));
  probe daemon;
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
      ~source:(counter_asp 100) ()
  in
  check "epoch 2" 2 (expect_ack outcome);
  check "previous retained" 1
    (Option.value ~default:0 (Daemon.previous_epoch daemon ~name:"counter"));
  probe daemon;
  (* fresh proto state: the old count does not carry over *)
  check "version 2 serving" 100 (count_of daemon ~name:"counter");
  check "only one program installed" 1
    (List.length (Runtime.installed_programs (Daemon.runtime daemon)))

let deploy_stale_epoch_nak () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~epoch:5 ~source:(counter_asp 1) ()));
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
      ~epoch:3 ~source:(counter_asp 2) ()
  in
  let reason = expect_nak outcome in
  checkb "names the high water" true
    (reason = "stale epoch 3 (high water 5)");
  check "epoch 5 still active" 5
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  probe daemon;
  check "old version still serving" 1 (count_of daemon ~name:"counter")

let deploy_verify_reject () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~source:(counter_asp 1) ()));
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
      ~source:flood_asp ()
  in
  ignore (expect_nak outcome);
  check "old epoch still active" 1
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  probe daemon;
  check "old version still serving" 1 (count_of daemon ~name:"counter");
  (* high water records accepted epochs only: the rejected epoch number
     may be re-shipped once the program is fixed *)
  check "high water unchanged" 1 (Daemon.high_water daemon ~name:"counter")

let deploy_authenticated_skips_verify () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"flood"
      ~authenticated:true ~source:flood_asp ()
  in
  check "privileged path installs" 1 (expect_ack outcome)

let deploy_rollback () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~source:(counter_asp 1) ()));
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~source:(counter_asp 100) ()));
  let result = ref None in
  Controller.rollback controller ~target ~name:"counter"
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  Topology.run topo;
  (match !result with
  | Some (Controller.Acked { epoch; note; _ }) ->
      check "restored epoch" 1 epoch;
      checks "note" "rolled-back" note
  | Some outcome ->
      Alcotest.failf "rollback: %s" (Controller.outcome_to_string outcome)
  | None -> Alcotest.fail "rollback never settled");
  check "epoch 1 active again" 1
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  probe daemon;
  check "version 1 serving again" 1 (count_of daemon ~name:"counter");
  (* rollback does not lower the high-water mark: a redeploy must beat it *)
  checkb "high water preserved" true
    (Daemon.high_water daemon ~name:"counter" >= 2);
  let outcome =
    deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
      ~source:(counter_asp 7) ()
  in
  checkb "next deploy exceeds high water" true (expect_ack outcome > 2)

let deploy_undeploy () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller ~target ~name:"counter"
          ~source:(counter_asp 1) ()));
  let result = ref None in
  Controller.undeploy controller ~target ~name:"counter"
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  Topology.run topo;
  (match !result with
  | Some (Controller.Acked { note; _ }) -> checks "note" "undeployed" note
  | Some outcome ->
      Alcotest.failf "undeploy: %s" (Controller.outcome_to_string outcome)
  | None -> Alcotest.fail "undeploy never settled");
  checkb "slot empty" true (Daemon.active_epoch daemon ~name:"counter" = None);
  check "nothing installed" 0
    (List.length (Runtime.installed_programs (Daemon.runtime daemon)));
  (* the retired version is the rollback target *)
  let result = ref None in
  Controller.rollback controller ~target ~name:"counter"
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  Topology.run topo;
  (match !result with
  | Some (Controller.Acked { epoch; _ }) -> check "restored" 1 epoch
  | _ -> Alcotest.fail "rollback after undeploy failed");
  probe daemon;
  check "serving again" 1 (count_of daemon ~name:"counter")

let rollback_without_history () =
  let topo, controller, daemon, _link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  ignore daemon;
  let result = ref None in
  Controller.rollback controller ~target ~name:"ghost"
    ~on_done:(fun outcome -> result := Some outcome)
    ();
  Topology.run topo;
  match !result with
  | Some (Controller.Nakked { reason; _ }) ->
      checks "reason" "nothing to roll back to" reason
  | _ -> Alcotest.fail "expected NAK"

(* ---------- loss and flapping ---------- *)

let deploy_through_flapping_link () =
  let topo, controller, daemon, link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  let engine = Topology.engine topo in
  (* cut the cable before the transfer can finish; heal it later *)
  Engine.schedule engine ~at:0.0005 (fun () -> Link.set_up link false);
  Engine.schedule engine ~at:2.0 (fun () -> Link.set_up link true);
  let outcome =
    deploy_sync
      ~run:(fun topo -> Topology.run_until topo ~stop:30.0)
      topo controller ~target ~name:"counter" ~source:(counter_asp 1) ()
  in
  check "delivered after the flap" 1 (expect_ack outcome);
  checkb "flap forced retransmissions" true
    (Obs.Registry.count
       (Obs.Registry.counter
          ~labels:[ ("controller", "ctl") ]
          "deploy.controller.retransmissions")
    > 0)

let epoch_monotonic_under_loss () =
  (* Several deployment rounds racing a flapping link: whatever happens,
     the daemon's high-water mark never decreases and the active epoch is
     always the last one ACKed. *)
  let topo, controller, daemon, link = two_nodes () in
  let target = Node.addr (Daemon.node daemon) in
  let engine = Topology.engine topo in
  let water = ref 0 in
  let monotone = ref true in
  let acked = ref [] in
  for round = 1 to 5 do
    let at = float_of_int (round - 1) *. 10.0 in
    Engine.schedule engine ~at (fun () ->
        Controller.deploy controller ~target ~name:"counter"
          ~source:(counter_asp round) ~timeout:8.0
          ~on_done:(fun outcome ->
            (match outcome with
            | Controller.Acked { epoch; _ } -> acked := epoch :: !acked
            | _ -> ());
            let hw = Daemon.high_water daemon ~name:"counter" in
            if hw < !water then monotone := false;
            water := max !water hw)
          ());
    (* flap mid-round *)
    Engine.schedule engine ~at:(at +. 0.0004) (fun () -> Link.set_up link false);
    Engine.schedule engine ~at:(at +. 1.2) (fun () -> Link.set_up link true)
  done;
  Topology.run_until topo ~stop:120.0;
  checkb "high water monotone" true !monotone;
  checkb "every round eventually acked" true (List.length !acked = 5);
  check "last ack is active" (List.hd !acked)
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"))

(* ---------- staged rollout ---------- *)

let rollout_topology n =
  let topo = Topology.create () in
  let ctl = Topology.add_host topo "ctl" "10.0.0.1" in
  let router = Topology.add_host topo "router" "10.0.0.254" in
  ignore (Topology.connect topo ctl router);
  let daemons =
    List.init n (fun i ->
        let host =
          Topology.add_host topo
            (Printf.sprintf "h%d" i)
            (Printf.sprintf "10.0.1.%d" (i + 1))
        in
        ignore (Topology.connect topo router host);
        Daemon.start host ())
  in
  Topology.compute_routes topo;
  (topo, Controller.create ctl (), daemons)

let rollout_all_ack () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  let result = ref None in
  Controller.rollout controller ~targets ~name:"counter"
    ~source:(counter_asp 1) ~concurrency:2
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Topology.run topo;
  match !result with
  | None -> Alcotest.fail "rollout never finished"
  | Some outcomes ->
      check "one outcome per target" 3 (List.length outcomes);
      checkb "input order" true (List.map fst outcomes = targets);
      List.iter (fun (_, outcome) -> ignore (expect_ack outcome)) outcomes;
      List.iter
        (fun d ->
          check "deployed everywhere" 1
            (Option.value ~default:0 (Daemon.active_epoch d ~name:"counter")))
        daemons

let rollout_abort_on_nak () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  (* poison the middle target: its high water is already above the
     rollout's epoch, so it NAKs as stale *)
  let middle = List.nth daemons 1 in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller
          ~target:(Node.addr (Daemon.node middle)) ~name:"counter" ~epoch:10
          ~source:(counter_asp 1) ()));
  let result = ref None in
  Controller.rollout controller ~targets ~name:"counter" ~epoch:2
    ~source:(counter_asp 2) ~concurrency:1 ~on_nak:Controller.Abort
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Topology.run topo;
  match !result with
  | None -> Alcotest.fail "rollout never finished"
  | Some outcomes -> (
      match List.map snd outcomes with
      | [ Controller.Acked _; Controller.Nakked _; Controller.Skipped ] -> ()
      | outcomes ->
          Alcotest.failf "unexpected outcomes: %s"
            (String.concat ", " (List.map Controller.outcome_to_string outcomes)))

let rollout_continue_past_nak () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  let middle = List.nth daemons 1 in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller
          ~target:(Node.addr (Daemon.node middle)) ~name:"counter" ~epoch:10
          ~source:(counter_asp 1) ()));
  let result = ref None in
  Controller.rollout controller ~targets ~name:"counter" ~epoch:2
    ~source:(counter_asp 2) ~concurrency:1 ~on_nak:Controller.Continue
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Topology.run topo;
  match !result with
  | None -> Alcotest.fail "rollout never finished"
  | Some outcomes -> (
      match List.map snd outcomes with
      | [ Controller.Acked _; Controller.Nakked _; Controller.Acked _ ] -> ()
      | outcomes ->
          Alcotest.failf "unexpected outcomes: %s"
            (String.concat ", " (List.map Controller.outcome_to_string outcomes)))

(* An aborted rollout must not leave the already-swapped prefix on the
   new epoch (regression: abort used to stop after skipping the tail,
   stranding the fleet mixed-epoch). A target that was on a prior epoch
   is rolled back to it; a first-install target is undeployed. The
   outcome list still reports each target's original fate. *)
let rollout_abort_restores_prior_epoch () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  let first = List.nth daemons 0 and middle = List.nth daemons 1 in
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller
          ~target:(Node.addr (Daemon.node first))
          ~name:"counter" ~source:(counter_asp 1) ()));
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller
          ~target:(Node.addr (Daemon.node middle))
          ~name:"counter" ~epoch:10 ~source:(counter_asp 1) ()));
  let result = ref None in
  let staged = ref [] in
  Controller.rollout controller ~targets ~name:"counter" ~epoch:2
    ~source:(counter_asp 2) ~concurrency:1 ~on_nak:Controller.Abort
    ~on_target:(fun target outcome -> staged := (target, outcome) :: !staged)
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Topology.run topo;
  (match !result with
  | None -> Alcotest.fail "rollout never finished"
  | Some outcomes -> (
      match List.map snd outcomes with
      | [ Controller.Acked _; Controller.Nakked _; Controller.Skipped ] -> ()
      | outcomes ->
          Alcotest.failf "unexpected outcomes: %s"
            (String.concat ", " (List.map Controller.outcome_to_string outcomes))));
  check "per-target callback saw every stage" 3 (List.length !staged);
  (* The acked head of the fleet is back on its prior epoch... *)
  check "first target restored to epoch 1" 1
    (Option.value ~default:0 (Daemon.active_epoch first ~name:"counter"));
  probe first;
  check "first target serves the restored version" 1
    (count_of first ~name:"counter");
  (* ...and the skipped tail was never touched. *)
  checkb "skipped target still empty" true
    (Daemon.active_epoch (List.nth daemons 2) ~name:"counter" = None)

let rollout_abort_undeploys_first_install () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  let first = List.nth daemons 0 and middle = List.nth daemons 1 in
  (* Only the middle target is poisoned; the head has no prior epoch, so
     the abort restore must retire its freshly-installed program. *)
  ignore
    (expect_ack
       (deploy_sync ~run:Topology.run topo controller
          ~target:(Node.addr (Daemon.node middle))
          ~name:"counter" ~epoch:10 ~source:(counter_asp 1) ()));
  let result = ref None in
  Controller.rollout controller ~targets ~name:"counter" ~epoch:2
    ~source:(counter_asp 2) ~concurrency:1 ~on_nak:Controller.Abort
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Topology.run topo;
  (match !result with
  | None -> Alcotest.fail "rollout never finished"
  | Some outcomes -> (
      match List.map snd outcomes with
      | [ Controller.Acked _; Controller.Nakked _; Controller.Skipped ] -> ()
      | outcomes ->
          Alcotest.failf "unexpected outcomes: %s"
            (String.concat ", " (List.map Controller.outcome_to_string outcomes))));
  checkb "first-install head undeployed after abort" true
    (Daemon.active_epoch first ~name:"counter" = None)

let rollback_fleet_restores_every_target () =
  let topo, controller, daemons = rollout_topology 3 in
  let targets = List.map (fun d -> Node.addr (Daemon.node d)) daemons in
  let settle outcomes_ref =
    Topology.run topo;
    match !outcomes_ref with
    | None -> Alcotest.fail "fleet operation never finished"
    | Some outcomes -> outcomes
  in
  let v1 = ref None in
  Controller.rollout controller ~targets ~name:"counter"
    ~source:(counter_asp 1) ~concurrency:2
    ~on_done:(fun outcomes -> v1 := Some outcomes)
    ();
  List.iter (fun (_, o) -> ignore (expect_ack o)) (settle v1);
  let v2 = ref None in
  Controller.rollout controller ~targets ~name:"counter"
    ~source:(counter_asp 2) ~concurrency:2
    ~on_done:(fun outcomes -> v2 := Some outcomes)
    ();
  List.iter (fun (_, o) -> ignore (expect_ack o)) (settle v2);
  let rolled = ref None in
  Controller.rollback_fleet controller ~targets ~name:"counter"
    ~on_done:(fun outcomes -> rolled := Some outcomes)
    ();
  let outcomes = settle rolled in
  check "one outcome per target" 3 (List.length outcomes);
  checkb "input order" true (List.map fst outcomes = targets);
  List.iter (fun (_, o) -> ignore (expect_ack o)) outcomes;
  List.iter
    (fun d ->
      check "every daemon back on epoch 1" 1
        (Option.value ~default:0 (Daemon.active_epoch d ~name:"counter"));
      probe d;
      check "the restored version serves" 1 (count_of d ~name:"counter"))
    daemons

(* ---------- end to end: lossy link, hot swap under traffic ---------- *)

let e2e_lossy_hot_swap_and_rollback () =
  let topo = Topology.create () in
  let ctl = Topology.add_host topo "ctl" "10.0.0.1" in
  let router = Topology.add_host topo "router" "10.0.0.254" in
  let target_node = Topology.add_host topo "edge" "10.0.1.1" in
  ignore (Topology.connect topo ctl router);
  let lossy = Topology.connect topo router target_node in
  Topology.compute_routes topo;
  let daemon = Daemon.start target_node () in
  let controller = Controller.create ctl () in
  let target = Node.addr target_node in
  let engine = Topology.engine topo in
  (* Version 1 in place first. *)
  ignore
    (expect_ack
       (deploy_sync
          ~run:(fun topo -> Topology.run_until topo ~stop:5.0)
          topo controller ~target ~name:"counter" ~source:(counter_asp 1) ()));
  let v1_count = ref 0 in
  probe daemon;
  v1_count := count_of daemon ~name:"counter";
  check "v1 serving before upgrade" 1 !v1_count;
  (* Upgrade to version 2 through a link that flaps mid-transfer. While the
     transfer limps along, version 1 must keep serving. *)
  let mid_epoch = ref (-1) in
  let mid_count = ref (-1) in
  let ack_time = ref nan in
  let upgraded = ref None in
  Engine.schedule engine ~at:10.0 (fun () ->
      Controller.deploy controller ~target ~name:"counter"
        ~source:(counter_asp 100) ~timeout:60.0
        ~on_done:(fun outcome ->
          ack_time := Engine.now engine;
          upgraded := Some outcome)
        ());
  Engine.schedule engine ~at:10.0005 (fun () -> Link.set_up lossy false);
  (* mid-transfer, during the outage: old epoch serving *)
  Engine.schedule engine ~at:11.0 (fun () ->
      mid_epoch :=
        Option.value ~default:(-1) (Daemon.active_epoch daemon ~name:"counter");
      probe daemon;
      mid_count := count_of daemon ~name:"counter");
  Engine.schedule engine ~at:13.0 (fun () -> Link.set_up lossy true);
  Topology.run_until topo ~stop:90.0;
  check "old epoch served during transfer" 1 !mid_epoch;
  check "old version counted the probe" 2 !mid_count;
  (match !upgraded with
  | Some (Controller.Acked { epoch; _ }) -> check "new epoch" 2 epoch
  | Some outcome ->
      Alcotest.failf "upgrade: %s" (Controller.outcome_to_string outcome)
  | None -> Alcotest.fail "upgrade never settled");
  checkb "ack arrived after the link healed" true (!ack_time > 13.0);
  check "new epoch active after ack" 2
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  probe daemon;
  check "new version serving" 100 (count_of daemon ~name:"counter");
  (* A verify-rejected capsule must not dethrone version 2... *)
  ignore
    (expect_nak
       (deploy_sync
          ~run:(fun topo -> Topology.run_until topo ~stop:200.0)
          topo controller ~target ~name:"counter" ~source:flood_asp ()));
  check "still on epoch 2" 2
    (Option.value ~default:0 (Daemon.active_epoch daemon ~name:"counter"));
  (* ...and the operator can still fall back to version 1 explicitly. *)
  let rolled = ref None in
  Controller.rollback controller ~target ~name:"counter"
    ~on_done:(fun outcome -> rolled := Some outcome)
    ();
  Topology.run_until topo ~stop:300.0;
  (match !rolled with
  | Some (Controller.Acked { epoch; _ }) -> check "rolled to v1" 1 epoch
  | _ -> Alcotest.fail "rollback failed");
  probe daemon;
  check "v1 serving after rollback" 1 (count_of daemon ~name:"counter")

(* ---------- daemon protocol-level behavior (via inject) ---------- *)

let daemon_nak_without_transfer () =
  let topo = Topology.create () in
  let host = Topology.add_host topo "h" "10.0.0.1" in
  ignore (Topology.connect topo host (Topology.add_host topo "peer" "10.0.0.2"));
  Topology.compute_routes topo;
  let daemon = Daemon.start host () in
  (* chunks for an unknown transfer are dropped, not crashed on *)
  Daemon.inject daemon
    (Capsule.encode
       (Capsule.Chunk { program = "ghost"; epoch = 9; index = 0; data = "x" }));
  checkb "no slot created" true (Daemon.active_epoch daemon ~name:"ghost" = None);
  (* garbage payloads are ignored *)
  Daemon.inject daemon (Payload.of_string "\xde\xad");
  check "no programs" 0 (List.length (Runtime.installed_programs (Daemon.runtime daemon)))

let suite =
  [
    ( "capsule",
      [
        Alcotest.test_case "codec round-trip" `Quick capsule_roundtrip;
        Alcotest.test_case "decode garbage" `Quick capsule_decode_garbage;
        Alcotest.test_case "signature binds fields" `Quick
          capsule_signature_binds_fields;
        Alcotest.test_case "rope payloads" `Quick capsule_rope_payloads;
        QCheck_alcotest.to_alcotest chunk_reassemble_roundtrip;
        Alcotest.test_case "reassembly rejects" `Quick reassembly_rejects;
      ] );
    ( "deploy",
      [
        Alcotest.test_case "basic deploy" `Quick deploy_basic;
        Alcotest.test_case "hot swap" `Quick deploy_hot_swap;
        Alcotest.test_case "stale epoch NAK" `Quick deploy_stale_epoch_nak;
        Alcotest.test_case "verify reject leaves old serving" `Quick
          deploy_verify_reject;
        Alcotest.test_case "authenticated skips verify" `Quick
          deploy_authenticated_skips_verify;
        Alcotest.test_case "rollback" `Quick deploy_rollback;
        Alcotest.test_case "undeploy then rollback" `Quick deploy_undeploy;
        Alcotest.test_case "rollback without history" `Quick
          rollback_without_history;
        Alcotest.test_case "daemon ignores strays" `Quick
          daemon_nak_without_transfer;
      ] );
    ( "loss",
      [
        Alcotest.test_case "deploy through flapping link" `Quick
          deploy_through_flapping_link;
        Alcotest.test_case "epoch monotonic under loss" `Quick
          epoch_monotonic_under_loss;
      ] );
    ( "rollout",
      [
        Alcotest.test_case "all ack" `Quick rollout_all_ack;
        Alcotest.test_case "abort on NAK" `Quick rollout_abort_on_nak;
        Alcotest.test_case "continue past NAK" `Quick rollout_continue_past_nak;
        Alcotest.test_case "abort restores prior epoch" `Quick
          rollout_abort_restores_prior_epoch;
        Alcotest.test_case "abort undeploys first install" `Quick
          rollout_abort_undeploys_first_install;
        Alcotest.test_case "rollback fleet" `Quick
          rollback_fleet_restores_every_target;
      ] );
    ( "e2e",
      [
        Alcotest.test_case "lossy hot swap and rollback" `Quick
          e2e_lossy_hot_swap_and_rollback;
      ] );
  ]

let () = Alcotest.run "deploy" suite
