(* Tests for the implemented §5 future-work extensions: load-balancing
   strategies, cluster fault tolerance, and image distillation. *)

module Image = Planp_runtime.Image
module Value = Planp_runtime.Value
module Node = Netsim.Node
module Topology = Netsim.Topology
module Payload = Netsim.Payload

let () = Planp_runtime.Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- load-balancing strategies ---------- *)

let strategies_verify () =
  List.iter
    (fun strategy ->
      let source =
        Asp.Http_asp.gateway_program ~strategy ~vip:"10.3.0.100"
          ~servers:("10.3.0.1", "10.3.0.2") ()
      in
      match Extnet.verify_source source with
      | Ok report ->
          checkb
            (Asp.Http_asp.strategy_name strategy ^ " proved")
            true
            (Extnet.Verifier.passes report)
      | Error message -> Alcotest.fail message)
    [ Asp.Http_asp.Modulo; Asp.Http_asp.Source_hash; Asp.Http_asp.Weighted (3, 1) ]

(* Drive a strategy gateway with requests from several client addresses,
   return the (server0, server1) request split. *)
let strategy_split strategy clients_requests =
  let topo = Topology.create () in
  let gw = Topology.add_host topo "gw" "10.3.0.254" in
  let s0 = Topology.add_host topo "s0" "10.3.0.1" in
  let s1 = Topology.add_host topo "s1" "10.3.0.2" in
  let seg = Topology.segment topo ~bandwidth_bps:100e6 () in
  ignore (Topology.attach topo seg gw);
  ignore (Topology.attach topo seg s0);
  ignore (Topology.attach topo seg s1);
  let clients =
    List.init 4 (fun i ->
        let c = Topology.add_host topo (Printf.sprintf "c%d" i)
            (Printf.sprintf "10.4.%d.1" i) in
        ignore (Topology.connect topo gw c);
        c)
  in
  Topology.compute_routes topo;
  let vip = Netsim.Addr.of_string "10.3.0.100" in
  List.iter
    (fun c ->
      Netsim.Routing.set_default (Node.routing c)
        (Some { Netsim.Routing.ifindex = 0; next_hop = Some (Node.addr gw) }))
    clients;
  ignore
    (Extnet.load_exn gw
       ~source:
         (Asp.Http_asp.gateway_program ~strategy ~vip:"10.3.0.100"
            ~servers:("10.3.0.1", "10.3.0.2") ())
       ());
  let hits0 = ref 0 and hits1 = ref 0 in
  Node.on_tcp s0 ~port:80 (fun _ _ -> incr hits0);
  Node.on_tcp s1 ~port:80 (fun _ _ -> incr hits1);
  List.iteri
    (fun ci requests ->
      let client = List.nth clients ci in
      for r = 1 to requests do
        Node.send_tcp client ~dst:vip ~src_port:(1000 + r) ~dst_port:80
          (Payload.of_string "GET")
      done)
    clients_requests;
  Topology.run topo;
  (!hits0, !hits1)

let source_hash_affinity () =
  (* With source hashing, all requests of one client land on one server. *)
  let h0, h1 = strategy_split Asp.Http_asp.Source_hash [ 10; 0; 0; 0 ] in
  checkb "all on one server" true ((h0 = 10 && h1 = 0) || (h0 = 0 && h1 = 10))

let weighted_split () =
  let h0, h1 = strategy_split (Asp.Http_asp.Weighted (3, 1)) [ 4; 4; 4; 4 ] in
  (* 16 fresh connections at weights 3:1 -> 12 / 4 *)
  check "server0 weighted share" 12 h0;
  check "server1 weighted share" 4 h1

(* ---------- fault tolerance ---------- *)

let failover_verifies () =
  match
    Extnet.verify_source
      (Asp.Http_asp.failover_gateway_program ~vip:"10.3.0.100"
         ~servers:("10.3.0.1", "10.3.0.2") ())
  with
  | Ok report -> checkb "proved" true (Extnet.Verifier.passes report)
  | Error message -> Alcotest.fail message

let failover_keeps_serving () =
  let config =
    { (Asp.Http_ft.default_config ()) with
      Asp.Http_ft.duration = 20.0; kill_at = 8.0; workers = 16 }
  in
  let ft = Asp.Http_ft.run config in
  let plain = Asp.Http_ft.run { config with Asp.Http_ft.failover = false } in
  checkb "healthy phases comparable" true
    (Float.abs
       (ft.Asp.Http_ft.before_kill_rate -. plain.Asp.Http_ft.before_kill_rate)
     /. ft.Asp.Http_ft.before_kill_rate
    < 0.15);
  checkb "failover keeps most throughput" true
    (ft.Asp.Http_ft.after_kill_rate > 0.5 *. ft.Asp.Http_ft.before_kill_rate);
  checkb "plain gateway collapses" true
    (plain.Asp.Http_ft.after_kill_rate < 0.2 *. plain.Asp.Http_ft.before_kill_rate);
  check "one health transition" 1 ft.Asp.Http_ft.monitor_transitions;
  checkb "failover causes fewer client retries" true
    (ft.Asp.Http_ft.stalled_retries < plain.Asp.Http_ft.stalled_retries)

let failover_recovery () =
  let config =
    { (Asp.Http_ft.default_config ()) with
      Asp.Http_ft.duration = 24.0; kill_at = 6.0; recover_at = Some 12.0;
      workers = 16 }
  in
  let r = Asp.Http_ft.run config in
  (* down + up = two transitions, and both servers end up having served *)
  check "two transitions" 2 r.Asp.Http_ft.monitor_transitions;
  let s0, s1 = r.Asp.Http_ft.server_loads in
  checkb "server0 served before and after" true (s0 > 0);
  checkb "server1 carried the outage" true (s1 > s0)

(* ---------- image distillation ---------- *)

let image_roundtrip () =
  List.iter
    (fun (w, h) ->
      let image = Image.synth ~width:w ~height:h ~seed:3 in
      match Image.decode (Image.encode image) with
      | Some decoded -> checkb "roundtrip" true (Image.equal image decoded)
      | None -> Alcotest.fail "decode failed")
    [ (1, 1); (3, 5); (64, 64); (17, 9) ]

let image_roundtrip_low_depth () =
  let image = Image.distill (Image.synth ~width:32 ~height:32 ~seed:9) in
  check "depth halved" 4 image.Image.depth;
  (match Image.decode (Image.encode image) with
  | Some decoded -> checkb "4-bit roundtrip" true (Image.equal image decoded)
  | None -> Alcotest.fail "decode failed");
  let image2 = Image.distill image in
  check "depth floor" 2 image2.Image.depth;
  match Image.decode (Image.encode image2) with
  | Some decoded -> checkb "2-bit roundtrip" true (Image.equal image2 decoded)
  | None -> Alcotest.fail "decode failed"

let image_distill_shrinks () =
  let image = Image.synth ~width:64 ~height:64 ~seed:1 in
  let d1 = Image.distill image in
  let d2 = Image.distill d1 in
  check "half width" 32 d1.Image.width;
  check "half depth" 4 d1.Image.depth;
  checkb "size shrinks a lot" true
    (Image.encoded_size d1 * 7 < Image.encoded_size image);
  checkb "second step shrinks again" true
    (Image.encoded_size d2 * 3 < Image.encoded_size d1);
  (* distillation loses fidelity monotonically *)
  let e1 = Image.rms_error image d1 and e2 = Image.rms_error image d2 in
  checkb "losses grow" true (e2 > e1 && e1 > 0.0);
  (* fully distilled fixpoint *)
  let tiny = Image.distill_n image 20 in
  checkb "fixpoint" true (Image.equal tiny (Image.distill tiny))

let image_rejects_junk () =
  checkb "junk" true (Option.is_none (Image.decode (Payload.of_string "JUNK")));
  checkb "truncated" true
    (Option.is_none
       (Image.decode
          (Payload.sub
             (Image.encode (Image.synth ~width:8 ~height:8 ~seed:0))
             ~pos:0 ~len:20)))

let image_prims () =
  let world, _, _ = Planp_runtime.World.dummy () in
  let eval name args =
    (Planp_runtime.Prim.find_exn name).Planp_runtime.Prim.impl world
      (Array.of_list args)
  in
  let blob = Value.Vblob (Image.encode (Image.synth ~width:16 ~height:8 ~seed:2)) in
  check "imgWidth" 16 (Value.as_int (eval "imgWidth" [ blob ]));
  check "imgHeight" 8 (Value.as_int (eval "imgHeight" [ blob ]));
  check "imgDepth" 8 (Value.as_int (eval "imgDepth" [ blob ]));
  checkb "isImage" true (Value.as_bool (eval "isImage" [ blob ]));
  checkb "isImage junk" false
    (Value.as_bool (eval "isImage" [ Value.Vblob (Payload.of_string "no") ]));
  let distilled = eval "imgDistill" [ blob; Value.Vint 1 ] in
  check "distilled width" 8 (Value.as_int (eval "imgWidth" [ distilled ]));
  Alcotest.check_raises "bad image" (Value.Planp_raise "BadImage") (fun () ->
      ignore (eval "imgWidth" [ Value.Vblob (Payload.of_string "no") ]))

let image_asp_verifies () =
  match Extnet.verify_source (Asp.Image_asp.router_program ~slow_iface:1 ()) with
  | Ok report -> checkb "proved" true (Extnet.Verifier.passes report)
  | Error message -> Alcotest.fail message

let image_experiment_shape () =
  let distilled = Asp.Image_asp.run_experiment ~count:8 ~distill:true () in
  let raw = Asp.Image_asp.run_experiment ~count:8 ~distill:false () in
  check "all arrive distilled" 8 distilled.Asp.Image_asp.images;
  check "all arrive raw" 8 raw.Asp.Image_asp.images;
  checkb "distillation cuts latency by >3x" true
    (raw.Asp.Image_asp.latency_s > 3.0 *. distilled.Asp.Image_asp.latency_s);
  checkb "distillation cuts bytes by >10x" true
    (raw.Asp.Image_asp.bytes_per_image
    > 10.0 *. distilled.Asp.Image_asp.bytes_per_image);
  checkb "fidelity cost is real but bounded" true
    (distilled.Asp.Image_asp.fidelity_rms > 0.0
    && distilled.Asp.Image_asp.fidelity_rms < 128.0);
  checkb "raw is lossless" true (raw.Asp.Image_asp.fidelity_rms = 0.0)

let image_adapts_to_capacity () =
  let slow = Asp.Image_asp.run_experiment ~count:4 ~link_bps:128e3 ~distill:true () in
  let mid = Asp.Image_asp.run_experiment ~count:4 ~link_bps:512e3 ~distill:true () in
  let fast = Asp.Image_asp.run_experiment ~count:4 ~link_bps:2e6 ~distill:true () in
  checkb "slower link, smaller images" true
    (slow.Asp.Image_asp.bytes_per_image < mid.Asp.Image_asp.bytes_per_image);
  checkb "fast link passes through" true
    (fast.Asp.Image_asp.fidelity_rms = 0.0)

(* ---------- self-delivery and capacity plumbing ---------- *)

let forward_to_self_delivers () =
  let engine = Netsim.Engine.create () in
  let node = Node.create engine ~name:"n" ~addr:(Netsim.Addr.of_string "10.0.0.1") in
  ignore (Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
  let got = ref 0 in
  Node.on_udp node ~port:9 (fun _ _ -> incr got);
  Node.forward node ~ifindex:0
    (Netsim.Packet.udp ~src:(Node.addr node) ~dst:(Node.addr node) ~src_port:9
       ~dst_port:9 Payload.empty);
  check "delivered locally" 1 !got

let capacity_visible_to_asp () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:2e6 a b);
  Topology.compute_routes topo;
  (* 2 Mb/s = 250 kB/s as seen by linkCapacity *)
  Alcotest.(check (float 1.0)) "capacity" 2e6 (Node.iface_capacity_bps a 0);
  let rt = Planp_runtime.Runtime.attach a in
  ignore
    (Planp_runtime.Runtime.install_exn rt
       ~source:
         "channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
          (deliver(p); (linkCapacity(thisIface()), ss))"
       ());
  Planp_runtime.Runtime.inject ~ifindex:0 rt
    (Netsim.Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty);
  let program = List.hd (Planp_runtime.Runtime.installed_programs rt) in
  checkb "kB/s via primitive" true
    (Value.equal (Value.Vint 250) (Planp_runtime.Runtime.proto_state program))

(* ---------- resource bound (the paper's rejected alternative) ---------- *)

let resource_bound_kills_cycles_and_legitimate_paths () =
  (* A 4-router chain, each running the forwarder under a resource bound
     of 2: the packet dies mid-path even though the program is verified --
     exactly the "unintended program termination" the paper warns about. *)
  let build bound =
    let topo = Topology.create () in
    let a = Topology.add_host topo "a" "10.0.0.1" in
    let r1 = Topology.add_host topo "r1" "10.0.0.2" in
    let r2 = Topology.add_host topo "r2" "10.0.0.3" in
    let r3 = Topology.add_host topo "r3" "10.0.0.4" in
    let b = Topology.add_host topo "b" "10.0.0.5" in
    ignore (Topology.connect topo a r1);
    ignore (Topology.connect topo r1 r2);
    ignore (Topology.connect topo r2 r3);
    ignore (Topology.connect topo r3 b);
    Topology.compute_routes topo;
    let source =
      "channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
       (OnRemote(network, p); (ps, ss))"
    in
    List.iter
      (fun router ->
        let rt = Planp_runtime.Runtime.attach ?resource_bound:bound router in
        ignore (Planp_runtime.Runtime.install_exn rt ~source ()))
      [ r1; r2; r3 ];
    let got = ref 0 in
    Node.on_udp b ~port:7 (fun _ _ -> incr got);
    Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty;
    Topology.run topo;
    !got
  in
  check "no bound: delivered across 3 ASP hops" 1 (build None);
  check "bound 8: still delivered" 1 (build (Some 8));
  check "bound 2: legitimate packet killed" 0 (build (Some 2))

(* ---------- deployment ---------- *)

let deploy_and_undeploy () =
  let topo = Topology.create () in
  let r1 = Topology.add_host topo "r1" "10.0.0.1" in
  let r2 = Topology.add_host topo "r2" "10.0.0.2" in
  ignore (Topology.connect topo r1 r2);
  Topology.compute_routes topo;
  let source =
    "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"
  in
  (match Extnet.deploy [ r1; r2 ] ~source () with
  | Ok handles ->
      check "two installs" 2 (List.length handles);
      List.iter
        (fun node ->
          match Extnet.runtime_of node with
          | Some rt ->
              check
                ("program present on " ^ Node.name node)
                1
                (List.length (Planp_runtime.Runtime.installed_programs rt))
          | None -> Alcotest.fail "runtime missing")
        [ r1; r2 ];
      Extnet.undeploy handles;
      List.iter
        (fun node ->
          match Extnet.runtime_of node with
          | Some rt ->
              check "removed" 0
                (List.length (Planp_runtime.Runtime.installed_programs rt))
          | None -> Alcotest.fail "runtime missing")
        [ r1; r2 ]
  | Error message -> Alcotest.fail message)

let deploy_is_atomic () =
  let topo = Topology.create () in
  let r1 = Topology.add_host topo "ra1" "10.1.0.1" in
  let r2 = Topology.add_host topo "ra2" "10.1.0.2" in
  ignore (Topology.connect topo r1 r2);
  Topology.compute_routes topo;
  (* An unverifiable program: deploy must refuse and leave nothing behind. *)
  let flood =
    "channel flood(ps : unit, ss : unit, p : ip*blob) is (OnNeighbor(flood, p); (ps, ss))"
  in
  (match Extnet.deploy [ r1; r2 ] ~source:flood () with
  | Ok _ -> Alcotest.fail "flood deployed"
  | Error _ -> ());
  List.iter
    (fun node ->
      match Extnet.runtime_of node with
      | Some rt ->
          check "nothing left" 0
            (List.length (Planp_runtime.Runtime.installed_programs rt))
      | None -> () (* runtime may not even have been created *))
    [ r1; r2 ];
  (* The authenticated path does deploy it. *)
  match Extnet.deploy ~admission:Extnet.Authenticated [ r1; r2 ] ~source:flood () with
  | Ok handles ->
      check "authenticated deploy" 2 (List.length handles);
      Extnet.undeploy handles
  | Error message -> Alcotest.fail message

let () =
  Alcotest.run "extensions"
    [
      ( "strategies",
        [
          Alcotest.test_case "all verify" `Quick strategies_verify;
          Alcotest.test_case "source-hash affinity" `Quick source_hash_affinity;
          Alcotest.test_case "weighted split" `Quick weighted_split;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "failover ASP verifies" `Quick failover_verifies;
          Alcotest.test_case "failover keeps serving" `Slow failover_keeps_serving;
          Alcotest.test_case "recovery" `Slow failover_recovery;
        ] );
      ( "images",
        [
          Alcotest.test_case "roundtrip" `Quick image_roundtrip;
          Alcotest.test_case "low-depth roundtrip" `Quick image_roundtrip_low_depth;
          Alcotest.test_case "distill shrinks" `Quick image_distill_shrinks;
          Alcotest.test_case "rejects junk" `Quick image_rejects_junk;
          Alcotest.test_case "primitives" `Quick image_prims;
          Alcotest.test_case "ASP verifies" `Quick image_asp_verifies;
          Alcotest.test_case "experiment shape" `Slow image_experiment_shape;
          Alcotest.test_case "adapts to capacity" `Slow image_adapts_to_capacity;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "forward to self delivers" `Quick
            forward_to_self_delivers;
          Alcotest.test_case "capacity visible to ASP" `Quick
            capacity_visible_to_asp;
        ] );
      ( "resource-bound",
        [
          Alcotest.test_case "kills cycles and legitimate paths" `Quick
            resource_bound_kills_cycles_and_legitimate_paths;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "deploy/undeploy" `Quick deploy_and_undeploy;
          Alcotest.test_case "atomicity + authentication" `Quick deploy_is_atomic;
        ] );
    ]
