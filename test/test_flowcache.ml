(* The flow-keyed decision cache (Planp_runtime.Flowcache) and its
   static analysis (Planp_analysis.Cacheability): verdicts on the
   bundled ASPs, replay correctness through a real runtime, the three
   invalidation sources (epoch, table generation, route recomputation),
   byte-identical exports cache-on vs cache-off — sequentially, across
   the paper experiments and under a 4-domain partitioned run — and the
   domain-safety of the backends' profiling counters. *)

module Q = QCheck
module Ast = Planp.Ast
module Cacheability = Planp_analysis.Cacheability
module Cache = Planp_runtime.Flowcache
module Runtime = Planp_runtime.Runtime
module Interp = Planp_runtime.Interp
module Value = Planp_runtime.Value
module Backend = Planp_runtime.Backend
module Topology = Netsim.Topology
module Node = Netsim.Node
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Registry = Obs.Registry

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let checked source =
  Planp_runtime.Prims.install ();
  match Extnet.check_source source with
  | Ok checked -> checked
  | Error message -> Alcotest.fail message

let verdicts source =
  Cacheability.analyze ~classify:Cache.classify
    (checked source).Planp.Typecheck.program

let globals_of chk =
  let world, _, _ = Planp_runtime.World.dummy () in
  List.fold_left
    (fun globals decl ->
      match decl with
      | Ast.Dval ({ Ast.bind_name; bind_expr; _ }, _) ->
          globals @ [ (bind_name, Interp.eval_const ~world ~globals bind_expr) ]
      | _ -> globals)
    [] chk.Planp.Typecheck.program

let is_cacheable = function
  | Cacheability.Cacheable _ -> true
  | Cacheability.Uncacheable _ -> false

let metrics () = Registry.to_json_string Registry.default
let reset () = Registry.reset Registry.default

(* ------------------------------------------------------------------ *)
(* Analysis verdicts on the bundled ASPs                               *)
(* ------------------------------------------------------------------ *)

let verdicts_bundled () =
  (* The shedding MPEG filter: one condition, no sites on the drop
     branch, a counting protocol state — the canonical cacheable ASP. *)
  (match verdicts (Asp.Mpeg_asp.filter_program ~drop_b:true ()) with
  | [ (_, Cacheability.Cacheable d) ] ->
      checkb "filter counts ps" true d.Cacheability.ps_int_delta;
      checkb "filter reads no tables" false d.Cacheability.reads_tables
  | [ (_, Cacheability.Uncacheable reason) ] ->
      Alcotest.fail ("filter uncacheable: " ^ reason)
  | _ -> Alcotest.fail "filter: one channel expected");
  (* Pass-through variant: unconditional forward. *)
  checkb "filter pass-through cacheable" true
    (List.for_all
       (fun (_, v) -> is_cacheable v)
       (verdicts (Asp.Mpeg_asp.filter_program ~drop_b:false ())));
  (* The audio client only delivers; its restoration site may raise but
     the handler's fallback is a site too. *)
  checkb "audio client cacheable" true
    (List.for_all
       (fun (_, v) -> is_cacheable v)
       (verdicts (Asp.Audio_asp.client_program ())));
  (* The audio router consults linkLoad: load-dependent decisions must
     never be frozen into a cache entry. *)
  checkb "audio router uncacheable" true
    (List.for_all
       (fun (_, v) -> not (is_cacheable v))
       (verdicts (Asp.Audio_asp.router_program ~iface:1 ())));
  (* The HTTP gateway writes its affinity table. *)
  checkb "http gateway uncacheable" true
    (List.for_all
       (fun (_, v) -> not (is_cacheable v))
       (verdicts
          (Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
             ~servers:("10.3.0.1", "10.3.0.2") ())));
  (* The MPEG monitor: control channels write the connection table
     (uncacheable); the mquery channel only reads it. *)
  let monitor = verdicts (Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" ()) in
  List.iter
    (fun (chan, verdict) ->
      if String.equal chan.Ast.chan_name "mquery" then (
        match verdict with
        | Cacheability.Cacheable d ->
            checkb "mquery reads tables" true d.Cacheability.reads_tables
        | Cacheability.Uncacheable reason ->
            Alcotest.fail ("mquery uncacheable: " ^ reason))
      else checkb "monitor control uncacheable" false (is_cacheable verdict))
    monitor

(* ------------------------------------------------------------------ *)
(* Runtime harness                                                     *)
(* ------------------------------------------------------------------ *)

let make_rt ?(name = "fc") ?(addr = "10.50.0.1") () =
  let engine = Engine.create () in
  let node = Node.create engine ~name ~addr:(Netsim.Addr.of_string addr) in
  ignore (Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
  Runtime.attach node

let cache_count ?(node = "fc") name =
  Option.value ~default:0
    (Registry.read_counter ~labels:[ ("node", node); ("chan", "network") ] name)

let b_frame ?(src = "10.6.0.1") () =
  let body = Bytes.make 16 '\000' in
  Bytes.set body 8 '\002';
  Packet.udp
    ~src:(Netsim.Addr.of_string src)
    ~dst:(Netsim.Addr.of_string "10.6.0.9")
    ~src_port:554 ~dst_port:7101 (Payload.of_bytes body)

let i_frame () =
  let body = Bytes.make 16 '\000' in
  Bytes.set body 8 '\001';
  Packet.udp
    ~src:(Netsim.Addr.of_string "10.6.0.1")
    ~dst:(Netsim.Addr.of_string "10.6.0.9")
    ~src_port:554 ~dst_port:7101 (Payload.of_bytes body)

(* ------------------------------------------------------------------ *)
(* Replay correctness                                                  *)
(* ------------------------------------------------------------------ *)

let replay_drop_and_count () =
  reset ();
  let rt = make_rt () in
  let program =
    Runtime.install_exn rt
      ~source:(Asp.Mpeg_asp.filter_program ~drop_b:true ())
      ()
  in
  let hits0 = cache_count "runtime.cache.hits" in
  for _ = 1 to 5 do
    Runtime.inject rt (b_frame ())
  done;
  check "five handled" 5 (Runtime.stats rt).Runtime.handled;
  check "five sheds counted"
    (match Runtime.proto_state program with Value.Vint n -> n | _ -> -1)
    5;
  check "four replays" 4 (cache_count "runtime.cache.hits" - hits0);
  (* A different flow key (new src) misses once, then replays. *)
  Runtime.inject rt (b_frame ~src:"10.6.0.2" ());
  Runtime.inject rt (b_frame ~src:"10.6.0.2" ());
  check "second flow replays too" 5 (cache_count "runtime.cache.hits" - hits0);
  (* The non-B frame takes the forwarding branch: distinct decision,
     handled either way. *)
  Runtime.inject rt (i_frame ());
  check "eight handled" 8 (Runtime.stats rt).Runtime.handled

let replay_deliver () =
  reset ();
  let rt = make_rt () in
  let node = Runtime.node rt in
  let delivered = ref 0 in
  Node.on_udp node ~port:Asp.Audio_app.audio_port (fun _ _ -> incr delivered);
  ignore (Runtime.install_exn rt ~source:(Asp.Audio_asp.client_program ()) ());
  let degraded =
    Packet.udp
      ~src:(Netsim.Addr.of_string "10.1.0.7")
      ~dst:(Node.addr node)
      ~src_port:Asp.Audio_app.audio_port ~dst_port:Asp.Audio_app.audio_port
      (Planp_runtime.Audio_frame.encode
         (Planp_runtime.Audio_frame.degrade
            (Planp_runtime.Audio_frame.synth ~seq:0 ~frames:20 ~phase:0)
            Planp_runtime.Audio_frame.Mono8))
  in
  for _ = 1 to 4 do
    Runtime.inject rt degraded
  done;
  check "every frame delivered" 4 !delivered;
  checkb "replays happened" true (cache_count "runtime.cache.hits" > 0)

let replay_error () =
  reset ();
  let rt = make_rt () in
  let source =
    {|channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let val x : int = 100 / udpDst(#2 p) in ((ps + x), ss) end
|}
  in
  let program = Runtime.install_exn rt ~source () in
  let pkt port =
    Packet.udp
      ~src:(Netsim.Addr.of_string "10.50.0.2")
      ~dst:(Netsim.Addr.of_string "10.50.0.1")
      ~src_port:7 ~dst_port:port (Payload.of_string "x")
  in
  for _ = 1 to 3 do
    Runtime.inject rt (pkt 4)
  done;
  check "delta replayed" 75
    (match Runtime.proto_state program with Value.Vint n -> n | _ -> -1);
  for _ = 1 to 3 do
    Runtime.inject rt (pkt 0)
  done;
  check "division errors counted" 3 (Runtime.stats rt).Runtime.errors;
  check "errors left ps alone" 75
    (match Runtime.proto_state program with Value.Vint n -> n | _ -> -1);
  checkb "error decisions replay too" true (cache_count "runtime.cache.hits" >= 3)

let table_generation_invalidates () =
  reset ();
  let rt = make_rt () in
  let source =
    {|val seeds : (int, int) hash_table = mkTable(8)

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  ((ps + tblGet(seeds, udpDst(#2 p), 7)), ss)

channel mut(ps : int, ss : unit, p : ip*udp*blob) is
  (tblSet(seeds, udpDst(#2 p), udpSrc(#2 p)); (ps, ss))
|}
  in
  let program = Runtime.install_exn rt ~source () in
  let net () =
    Packet.udp
      ~src:(Netsim.Addr.of_string "10.50.0.2")
      ~dst:(Netsim.Addr.of_string "10.50.0.1")
      ~src_port:7 ~dst_port:3 (Payload.of_string "x")
  in
  let mut () =
    Packet.udp ~chan_tag:"mut"
      ~src:(Netsim.Addr.of_string "0.0.0.42")
      ~dst:(Netsim.Addr.of_string "10.50.0.1")
      ~src_port:42 ~dst_port:3 (Payload.of_string "x")
  in
  Runtime.inject rt (net ());
  Runtime.inject rt (net ());
  check "default read twice" 14
    (match Runtime.proto_state program with Value.Vint n -> n | _ -> -1);
  (* The mutation flows through the uncacheable channel; the next read
     must observe it, not a stale entry. *)
  Runtime.inject rt (mut ());
  Runtime.inject rt (net ());
  check "mutated read observed" 56
    (match Runtime.proto_state program with Value.Vint n -> n | _ -> -1)

let epoch_invalidation () =
  reset ();
  let topo = Topology.create () in
  let a = Topology.add_host topo "fc-a" "10.51.0.1" in
  let b = Topology.add_host topo "fc-b" "10.51.0.2" in
  ignore (Topology.connect topo a b);
  Topology.compute_routes topo;
  let rt = Runtime.attach a in
  let e0 = Runtime.epoch rt in
  let program =
    Runtime.install_exn rt
      ~source:(Asp.Mpeg_asp.filter_program ~drop_b:true ())
      ()
  in
  checkb "install bumps the epoch" true (Runtime.epoch rt > e0);
  (* Route recomputation (also what fault reconvergence calls) flushes. *)
  let e1 = Runtime.epoch rt in
  Topology.compute_routes topo;
  checkb "route rebuild bumps the epoch" true (Runtime.epoch rt > e1);
  let e2 = Runtime.epoch rt in
  Runtime.uninstall rt program;
  checkb "uninstall bumps the epoch" true (Runtime.epoch rt > e2)

(* Direct build/probe/commit round trip, pinning entry counts. *)
let direct_size () =
  let source = Asp.Mpeg_asp.filter_program ~drop_b:true () in
  let chk = checked source in
  let globals = globals_of chk in
  let program = chk.Planp.Typecheck.program in
  let chan, verdict =
    List.hd (Cacheability.analyze ~classify:Cache.classify program)
  in
  let fc =
    match Cache.build ~node_name:"unit" ~chan ~verdict ~globals ~funs:[] with
    | Some fc -> fc
    | None -> Alcotest.fail "filter must build a cache"
  in
  check "starts empty" 0 (Cache.size fc);
  let exec =
    match Interp.backend.Backend.compile chk ~globals with
    | [ (_, exec) ] -> exec
    | _ -> Alcotest.fail "one channel"
  in
  let world, _, _ = Planp_runtime.World.dummy () in
  let round src =
    let packet = b_frame ~src () in
    let pkt =
      match Planp_runtime.Pkt_codec.decode chan.Ast.pkt_type packet with
      | Some v -> v
      | None -> Alcotest.fail "decode"
    in
    let src = packet.Packet.src and dst = packet.Packet.dst in
    match
      Cache.probe fc ~epoch:0 ~world ~src ~dst ~ps:(Value.Vint 0)
        ~ss:(Value.Vint 0) ~pkt
    with
    | `Hit hit -> `Hit hit
    | `Bypass -> Alcotest.fail "unexpected bypass"
    | `Miss ->
        let r, rworld =
          Cache.start_recording fc ~world ~ps:(Value.Vint 0) ~ss:(Value.Vint 0)
            ~pkt
        in
        let ps', ss' =
          exec rworld ~ps:(Value.Vint 0) ~ss:(Value.Vint 0) ~pkt
        in
        Cache.commit fc r ~epoch:0 ~error:false ~ps:(Value.Vint 0) ~ps'
          ~ss:(Value.Vint 0) ~ss' ~steps:0 ~prims:0;
        `Miss
  in
  checkb "first probe misses" true (round "10.6.0.1" = `Miss);
  check "one entry" 1 (Cache.size fc);
  (match round "10.6.0.1" with
  | `Hit hit ->
      check "replayed delta" 1 hit.Cache.h_delta;
      checkb "no error" false hit.Cache.h_error
  | `Miss -> Alcotest.fail "second probe must hit");
  checkb "second flow misses" true (round "10.6.0.2" = `Miss);
  check "two entries" 2 (Cache.size fc)

(* ------------------------------------------------------------------ *)
(* Parity: cache on vs cache off                                       *)
(* ------------------------------------------------------------------ *)

let with_cache enabled f =
  let was = Cache.enabled () in
  Cache.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Cache.set_enabled was) f

let audio_parity () =
  let leg enabled =
    with_cache enabled (fun () ->
        reset ();
        let r = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
        ( ( r.Asp.Audio_experiment.frames_sent,
            r.Asp.Audio_experiment.frames_received,
            r.Asp.Audio_experiment.silent_periods,
            r.Asp.Audio_experiment.silent_frames,
            r.Asp.Audio_experiment.segment_drops,
            r.Asp.Audio_experiment.wire_quality_counts ),
          metrics () ))
  in
  let s_on, m_on = leg true in
  let s_off, m_off = leg false in
  checkb "audio summary parity" true (s_on = s_off);
  checks "audio metrics parity" m_off m_on

let mpeg_parity () =
  let leg enabled =
    with_cache enabled (fun () ->
        reset ();
        let r = Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ()) in
        ( ( r.Asp.Mpeg_experiment.server_streams,
            r.Asp.Mpeg_experiment.server_frames_sent,
            r.Asp.Mpeg_experiment.client_frames,
            r.Asp.Mpeg_experiment.segment_video_bytes ),
          metrics () ))
  in
  let s_on, m_on = leg true in
  let s_off, m_off = leg false in
  checkb "mpeg summary parity" true (s_on = s_off);
  checks "mpeg metrics parity" m_off m_on

let http_parity () =
  let config =
    { Asp.Http_experiment.default_config with
      duration = 6.0;
      warmup = 2.0;
      trace_requests = 2_000
    }
  in
  let leg enabled =
    with_cache enabled (fun () ->
        reset ();
        let p =
          Asp.Http_experiment.run_point config
            (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) ~workers:4
        in
        ( ( p.Asp.Http_experiment.replies_per_s,
            p.Asp.Http_experiment.server_loads,
            p.Asp.Http_experiment.gateway_requests ),
          metrics () ))
  in
  let s_on, m_on = leg true in
  let s_off, m_off = leg false in
  checkb "http summary parity" true (s_on = s_off);
  checks "http metrics parity" m_off m_on

(* A 4-domain partitioned run with runtimes and caches on the interior
   routers must export the same metrics as one engine, cache on or off:
   the full 2x2 of (domains, cache). *)
let domains_parity () =
  let leg ~domains ~cache =
    with_cache cache (fun () ->
        reset ();
        let topo = Topology.create () in
        let source = Topology.add_host topo "fc-src" "10.52.0.1" in
        let r1 = Topology.add_host topo "fc-r1" "10.52.0.2" in
        let r2 = Topology.add_host topo "fc-r2" "10.52.0.3" in
        let sink = Topology.add_host topo "fc-sink" "10.52.0.4" in
        ignore
          (Topology.connect topo source r1 ~name:"hop1" ~latency:0.003
             ~bandwidth_bps:50_000_000.0);
        ignore
          (Topology.connect topo r1 r2 ~name:"hop2" ~latency:0.004
             ~bandwidth_bps:50_000_000.0);
        ignore
          (Topology.connect topo r2 sink ~name:"hop3" ~latency:0.005
             ~bandwidth_bps:50_000_000.0);
        Topology.compute_routes topo;
        List.iter
          (fun node ->
            let rt = Runtime.attach node in
            ignore
              (Runtime.install_exn rt
                 ~source:(Asp.Mpeg_asp.filter_program ~drop_b:true ())
                 ()))
          [ r1; r2 ];
        let par =
          match Netsim.Par_engine.of_topology topo ~domains with
          | Ok par -> par
          | Error m -> Alcotest.fail m
        in
        let received = ref 0 in
        Node.on_udp sink ~port:7101 (fun _ _ -> incr received);
        let engine = Node.engine source in
        let payload kind =
          let body = Bytes.make 16 '\000' in
          Bytes.set body 8 (Char.chr kind);
          Payload.of_bytes body
        in
        let rec send n () =
          if n > 0 then begin
            Node.send_udp source ~dst:(Node.addr sink) ~src_port:554
              ~dst_port:7101
              (payload (if n mod 2 = 0 then 2 else 1));
            Engine.schedule_after engine ~delay:0.005 (send (n - 1))
          end
        in
        Engine.schedule engine ~at:0.001 (send 30);
        Netsim.Par_engine.run_until par ~stop:1.0;
        (!received, metrics ()))
  in
  let f0, m0 = leg ~domains:1 ~cache:true in
  check "I-frames survive the filters" 15 f0;
  let legs =
    [ leg ~domains:1 ~cache:false;
      leg ~domains:4 ~cache:true;
      leg ~domains:4 ~cache:false ]
  in
  List.iter
    (fun (f, m) ->
      check "frame parity" f0 f;
      checks "metrics parity" m0 m)
    legs

(* ------------------------------------------------------------------ *)
(* Property: cacheable decisions replay exactly (satellite)            *)
(* ------------------------------------------------------------------ *)

(* Random packet streams with interleaved table mutations against a
   generated cacheable channel: the run with the cache must agree with
   the run without it on protocol state, runtime stats and the full
   deterministic metrics export (which sees every emission as a node
   counter). *)
let decision_parity_prop =
  let gen =
    Q.Gen.(
      pair
        (pair (int_range 0 3) (int_range 1 50))
        (list_size (int_range 1 40)
           (pair (int_range 0 2) (pair (int_range 0 3) (int_range 1 60)))))
  in
  let arb = Q.make ~print:Q.Print.(pair (pair int int) (list (pair int (pair int int)))) gen in
  Q.Test.make ~name:"flowcache: cached decisions replay exactly" ~count:40 arb
    (fun ((port, bump), stream) ->
      let source =
        Printf.sprintf
          {|val seeds : (int, int) hash_table = mkTable(8)
val hotPort : int = %d

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = hotPort then
    ((ps + tblGet(seeds, udpDst(#2 p), %d)), ss)
  else
    (OnRemote(network, p); (ps, ss))

channel mut(ps : int, ss : unit, p : ip*udp*blob) is
  (tblSet(seeds, udpDst(#2 p), udpSrc(#2 p)); (ps, ss))
|}
          port bump
      in
      let leg enabled =
        with_cache enabled (fun () ->
            reset ();
            let rt = make_rt () in
            let program = Runtime.install_exn rt ~source () in
            List.iter
              (fun (kind, (dst_port, value)) ->
                let packet =
                  if kind = 0 then
                    Packet.udp ~chan_tag:"mut"
                      ~src:(Netsim.Addr.of_string (Printf.sprintf "0.0.0.%d" value))
                      ~dst:(Netsim.Addr.of_string "10.50.0.1")
                      ~src_port:value ~dst_port (Payload.of_string "m")
                  else
                    Packet.udp
                      ~src:
                        (Netsim.Addr.of_string
                           (Printf.sprintf "10.50.1.%d" (1 + (kind mod 2))))
                      ~dst:(Netsim.Addr.of_string "10.50.0.1")
                      ~src_port:9 ~dst_port (Payload.of_string "n")
                in
                Runtime.inject rt packet)
              stream;
            let stats = Runtime.stats rt in
            ( (match Runtime.proto_state program with
              | Value.Vint n -> n
              | _ -> -1),
              stats.Runtime.handled,
              stats.Runtime.errors,
              metrics () ))
      in
      leg true = leg false)

(* ------------------------------------------------------------------ *)
(* Profiling counters are per-domain (satellite)                       *)
(* ------------------------------------------------------------------ *)

let interp_profile_domains () =
  let source =
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is ((ps + 1), ss)"
  in
  let chk = checked source in
  let chan, exec =
    match Interp.backend.Backend.compile chk ~globals:[] with
    | [ slot ] -> slot
    | _ -> Alcotest.fail "one channel"
  in
  let packet =
    Packet.udp
      ~src:(Netsim.Addr.of_string "10.50.0.2")
      ~dst:(Netsim.Addr.of_string "10.50.0.1")
      ~src_port:1 ~dst_port:2 (Payload.of_string "x")
  in
  let pkt =
    match Planp_runtime.Pkt_codec.decode chan.Ast.pkt_type packet with
    | Some v -> v
    | None -> Alcotest.fail "decode"
  in
  let run_packets n () =
    let world, _, _ = Planp_runtime.World.dummy () in
    let s0, _ = Interp.profile () in
    for _ = 1 to n do
      ignore (exec world ~ps:(Value.Vint 0) ~ss:Value.Vunit ~pkt)
    done;
    let s1, _ = Interp.profile () in
    s1 - s0
  in
  let main0, _ = Interp.profile () in
  let d1 = Domain.spawn (run_packets 100) in
  let d2 = Domain.spawn (run_packets 200) in
  let steps1 = Domain.join d1 and steps2 = Domain.join d2 in
  let main1, _ = Interp.profile () in
  checkb "domain one counted" true (steps1 > 0);
  (* Same packet, same channel: per-packet step cost is deterministic,
     so the counts are exactly proportional — and main's cell is
     untouched by the workers. *)
  check "per-domain counts are independent" (2 * steps1) steps2;
  check "main domain unaffected" main0 main1

(* ------------------------------------------------------------------ *)
(* Retune reaches the distillation thresholds (satellite)              *)
(* ------------------------------------------------------------------ *)

let retune_applies () =
  let policy =
    {
      Adapt.Policy.period = 0.5;
      alpha = 0.4;
      rules =
        [
          {
            Adapt.Policy.rl_name = "floor";
            rl_pred =
              Adapt.Policy.Cmp
                { signal = "goodput"; cmp = Adapt.Policy.Ge; threshold = 0.0 };
            rl_hold = 0.0;
            rl_cooldown = 10_000.0;
            rl_action =
              Adapt.Policy.Retune { param = "mono8_above"; value = 0.0 };
          };
        ];
      guard = None;
    }
  in
  reset ();
  let r =
    Asp.Audio_experiment.run
      (Asp.Audio_experiment.quick_config ~adapt:true
         ~deploy:Asp.Deploy_mode.In_band ~adaptation:policy ())
  in
  (match r.Asp.Audio_experiment.adaptation with
  | None -> Alcotest.fail "adaptation stats expected"
  | Some stats -> check "one retune fired" 1 stats.Adapt.Plane.st_retunes);
  (* mono8_above = 0 floors the distillation: with the threshold gone,
     nearly the whole run ships 8-bit mono (the untouched quick run
     ships 826 of 2500 frames as mono8 — see the golden pin). *)
  let _, _, m8 = r.Asp.Audio_experiment.wire_quality_counts in
  checkb "retuned threshold took effect" true (m8 > 2000)

let () =
  Planp_runtime.Prims.install ();
  Alcotest.run "flowcache"
    [
      ("analysis", [ Alcotest.test_case "bundled verdicts" `Quick verdicts_bundled ]);
      ( "replay",
        [
          Alcotest.test_case "drop and count" `Quick replay_drop_and_count;
          Alcotest.test_case "deliver" `Quick replay_deliver;
          Alcotest.test_case "errors" `Quick replay_error;
          Alcotest.test_case "table generation" `Quick table_generation_invalidates;
          Alcotest.test_case "epochs" `Quick epoch_invalidation;
          Alcotest.test_case "direct build/probe" `Quick direct_size;
        ] );
      ( "parity",
        [
          Alcotest.test_case "audio experiment" `Quick audio_parity;
          Alcotest.test_case "mpeg experiment" `Quick mpeg_parity;
          Alcotest.test_case "http experiment" `Quick http_parity;
          Alcotest.test_case "4-domain run" `Quick domains_parity;
          QCheck_alcotest.to_alcotest decision_parity_prop;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "interp profiling is per-domain" `Quick
            interp_profile_domains;
          Alcotest.test_case "retune reaches thresholds" `Quick retune_applies;
        ] );
    ]
