(* State-machine property test for the fleet adaptation plane: a random
   fleet (size, stage concurrency, NAK policy), a random subset of nodes
   poisoned so they NAK the plane's swap, a random uplink flap window
   during the rollout, and an optional guard regression after
   convergence. Whatever the scenario, the control plane must end with
   every node running the same variant — converged on the new epoch or
   cleanly rolled back to the old one, never mixed — and the plane's own
   view ([active_variant]) must agree with what the daemons actually
   serve. *)

let () = Planp_runtime.Prims.install ()

module Q = QCheck
module Topology = Netsim.Topology
module Node = Netsim.Node
module Engine = Netsim.Engine
module Link = Netsim.Link
module Payload = Netsim.Payload
module Packet = Netsim.Packet
module Runtime = Planp_runtime.Runtime
module Value = Planp_runtime.Value
module Daemon = Deploy.Daemon
module Controller = Deploy.Controller
module Registry = Obs.Registry
module Monitor = Adapt.Monitor
module Policy = Adapt.Policy
module Plane = Adapt.Plane

(* Two variants of "the same program", told apart by how fast they
   count untagged UDP packets (the test_deploy idiom). *)
let counter_asp step =
  Printf.sprintf
    "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + %d, ss))"
    step

let probe daemon =
  Runtime.inject
    (Daemon.runtime daemon)
    (Packet.udp ~src:1 ~dst:2 ~src_port:9 ~dst_port:9 Payload.empty)

(* The active program's counting step: 1 = old variant, 2 = new. *)
let step_of daemon =
  match Daemon.active_program daemon ~name:"prog" with
  | None -> 0
  | Some program ->
      let before = Value.as_int (Runtime.proto_state program) in
      probe daemon;
      Value.as_int (Runtime.proto_state program) - before

type scenario = {
  fleet : int;  (** nodes the program lives on *)
  concurrency : int;  (** rollout transfers in flight *)
  abort_on_nak : bool;  (** Abort vs Continue staging discipline *)
  poisoned : bool list;  (** per node: pre-seeded past the swap epoch *)
  guard_regresses : bool;  (** KPI collapses after convergence *)
  flap : (float * float) option;  (** uplink (start, duration), if any *)
}

let scenario_print sc =
  Printf.sprintf
    "fleet=%d concurrency=%d nak=%s poisoned=[%s] guard_regresses=%b flap=%s"
    sc.fleet sc.concurrency
    (if sc.abort_on_nak then "Abort" else "Continue")
    (String.concat ";" (List.map string_of_bool sc.poisoned))
    sc.guard_regresses
    (match sc.flap with
    | None -> "none"
    | Some (at, dur) -> Printf.sprintf "%.2f+%.2f" at dur)

(* Floats derived from small ints so the generator works on any qcheck;
   flap windows stay well under the 60 s deploy timeout, so a downed
   uplink only delays transfers (retries), never times them out. *)
let scenario_gen =
  let open Q.Gen in
  int_range 2 6 >>= fun fleet ->
  int_range 1 (fleet + 1) >>= fun concurrency ->
  bool >>= fun abort_on_nak ->
  list_repeat fleet bool >>= fun poisoned ->
  bool >>= fun guard_regresses ->
  opt (pair (int_range 8 16) (int_range 1 20)) >>= fun flap ->
  let flap =
    Option.map
      (fun (at, dur) -> (float_of_int at /. 10.0, float_of_int dur /. 10.0))
      flap
  in
  return { fleet; concurrency; abort_on_nak; poisoned; guard_regresses; flap }

let scenario_arb = Q.make ~print:scenario_print scenario_gen

let fail_scenario sc fmt =
  Printf.ksprintf
    (fun msg -> Q.Test.fail_reportf "%s: %s" (scenario_print sc) msg)
    fmt

let run_scenario sc =
  let topo = Topology.create () in
  let ctl = Topology.add_host topo "ctl" "10.0.0.1" in
  let ops = Topology.add_host topo "ops" "10.0.0.2" in
  let router = Topology.add_host topo "router" "10.0.0.254" in
  let uplink = Topology.connect topo ctl router in
  ignore (Topology.connect topo ops router);
  let hosts =
    List.init sc.fleet (fun i ->
        let host =
          Topology.add_host topo
            (Printf.sprintf "h%d" i)
            (Printf.sprintf "10.0.1.%d" (i + 1))
        in
        ignore (Topology.connect topo router host);
        host)
  in
  let daemons = List.map (fun host -> Daemon.start host ()) hosts in
  Topology.compute_routes topo;
  let targets = List.map Node.addr hosts in
  let plane_ctl = Controller.create ctl () in
  let ops_ctl = Controller.create ops () in

  (* Baseline: every node runs v1 at epoch 1 (the plane's controller
     knows these epochs, so an abort can restore them). *)
  let settled = ref None in
  Controller.rollout plane_ctl ~concurrency:sc.fleet ~targets ~name:"prog"
    ~source:(counter_asp 1)
    ~on_done:(fun outcomes -> settled := Some outcomes)
    ();
  Topology.run topo;
  (match !settled with
  | Some outcomes
    when List.for_all
           (fun (_, o) -> match o with Controller.Acked _ -> true | _ -> false)
           outcomes ->
      ()
  | _ -> fail_scenario sc "baseline rollout did not ack everywhere");

  (* Poison: a second controller pushes the SAME behaviour at epoch 100,
     behind the plane controller's back. The daemon's high-water mark
     now makes the plane's swap (epoch 2) NAK as stale — a node that
     refuses the coordinated change without changing what it serves. *)
  List.iteri
    (fun i poison ->
      if poison then begin
        let result = ref None in
        Controller.deploy ops_ctl ~epoch:100
          ~target:(List.nth targets i)
          ~name:"prog" ~source:(counter_asp 1)
          ~on_done:(fun o -> result := Some o)
          ();
        Topology.run topo;
        match !result with
        | Some (Controller.Acked _) -> ()
        | _ -> fail_scenario sc "poison deploy to node %d did not ack" i
      end)
    sc.poisoned;

  let engine = Topology.engine topo in
  let t0 = Engine.now engine in
  let cond = ref 0.0 in
  let kpi = ref 100.0 in
  Engine.schedule engine ~at:(t0 +. 0.6) (fun () -> cond := 1.0);
  if sc.guard_regresses then
    Engine.schedule engine ~at:(t0 +. 1.2) (fun () -> kpi := 5.0);
  (match sc.flap with
  | None -> ()
  | Some (start, duration) ->
      Engine.schedule engine ~at:(t0 +. start) (fun () ->
          Link.set_up uplink false);
      Engine.schedule engine
        ~at:(t0 +. start +. duration)
        (fun () -> Link.set_up uplink true));

  let policy =
    match
      Policy.parse
        "period 0.25\n\
         rule go: when cond > 0 for 0.25 cooldown 60 do swap prog v2\n\
         guard kpi window 0.5 min-ratio 0.9\n"
    with
    | Ok p -> p
    | Error msg -> fail_scenario sc "policy parse: %s" msg
  in
  let env =
    {
      Plane.de_controller = plane_ctl;
      de_backend = "jit";
      de_targets_of = (fun p -> if p = "prog" then targets else []);
      de_variant_of =
        (fun ~program ~variant ->
          if program = "prog" && variant = "v2" then
            Some { Plane.v_source = counter_asp 2; v_authenticated = false }
          else None);
      de_concurrency = sc.concurrency;
      de_nak_policy =
        (if sc.abort_on_nak then Controller.Abort else Controller.Continue);
      de_nak_quarantine = 3;
    }
  in
  let registry = Registry.create () in
  let plane =
    Plane.arm ~registry ~env
      ~active:[ ("prog", "v1") ]
      ~engine ~until:(t0 +. 4.0)
      ~signals:
        [
          ("cond", Monitor.Sample (fun () -> !cond));
          ("kpi", Monitor.Sample (fun () -> !kpi));
        ]
      policy
  in
  Topology.run topo;

  (* The scenario's end state is deterministic: the swap sticks exactly
     when nothing NAKed it and the guard saw no regression. *)
  let any_poison = List.exists Fun.id sc.poisoned in
  let expected_variant =
    if (not any_poison) && not sc.guard_regresses then "v2" else "v1"
  in
  let expected_step = if expected_variant = "v2" then 2 else 1 in
  List.iteri
    (fun i daemon ->
      let step = step_of daemon in
      if step <> expected_step then
        fail_scenario sc
          "node %d serves step %d, expected %d — fleet left mixed" i step
          expected_step)
    daemons;
  (match Plane.active_variant plane "prog" with
  | Some v when v = expected_variant -> ()
  | v ->
      fail_scenario sc "plane believes %S is live, expected %S"
        (Option.value ~default:"<none>" v)
        expected_variant);
  let stats = Plane.stats plane in
  if stats.Plane.st_fired <> 1 then
    fail_scenario sc "rule fired %d times, expected 1" stats.Plane.st_fired;
  if any_poison then begin
    if stats.Plane.st_swaps <> 0 then
      fail_scenario sc "swap reported converged despite %s"
        "a poisoned node";
    if stats.Plane.st_failed_swaps <> 1 then
      fail_scenario sc "expected exactly one failed swap, got %d"
        stats.Plane.st_failed_swaps
  end
  else begin
    if stats.Plane.st_swaps <> 1 then
      fail_scenario sc "clean fleet: expected one converged swap, got %d"
        stats.Plane.st_swaps;
    let want_rollbacks = if sc.guard_regresses then 1 else 0 in
    if stats.Plane.st_rollbacks <> want_rollbacks then
      fail_scenario sc "expected %d guard rollbacks, got %d" want_rollbacks
        stats.Plane.st_rollbacks
  end;
  (* One attempt per run: no node can hit the quarantine streak. *)
  if Plane.quarantined_nodes plane <> [] then
    fail_scenario sc "unexpected quarantine after a single attempt";
  true

let fleet_convergence_prop =
  Q.Test.make
    ~name:
      "fleet plane: converged epoch or clean full rollback, never mixed"
    ~count:200 scenario_arb run_scenario

let () =
  Alcotest.run "adapt_fleet"
    [
      ( "fleet",
        [ QCheck_alcotest.to_alcotest fleet_convergence_prop ] );
    ]
