(* Tests for the execution backends: the specializing JIT and the bytecode
   VM, checked against the interpreter (differential testing: the
   interpreter is the reference semantics the JIT was derived from). *)

module Value = Planp_runtime.Value
module World = Planp_runtime.World
module Prim = Planp_runtime.Prim
module Interp = Planp_runtime.Interp
module Backend = Planp_runtime.Backend
module Pkt_codec = Planp_runtime.Pkt_codec
module Specialize = Planp_jit.Specialize
module Bytecomp = Planp_jit.Bytecomp
module Bytecode = Planp_jit.Bytecode
module Vm = Planp_jit.Vm
module Backends = Planp_jit.Backends
module Packet = Netsim.Packet
module Payload = Netsim.Payload

let () = Planp_runtime.Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Evaluate one expression on all three engines and insist they agree. *)
let tri_eval ?(globals = []) source =
  let expr = Planp.Parser.parse_expr source in
  let world, _, _ = World.dummy () in
  let reference = Interp.eval_const ~world ~globals expr in
  let jit_code = Specialize.compile_expr ~globals ~params:[] expr in
  let jit = Specialize.run jit_code world [] in
  let unit_ = Bytecomp.compile_expr ~globals ~params:[] expr in
  let vm = Vm.call unit_ ~fn:0 world [||] in
  checkb
    (Printf.sprintf "jit agrees on %s" source)
    true (Value.equal reference jit);
  checkb
    (Printf.sprintf "vm agrees on %s" source)
    true (Value.equal reference vm);
  reference

let expression_corpus =
  [
    "1 + 2 * 3 - 4";
    "(1 + 2) * (3 - 4)";
    "17 mod 5 + 100 / 7";
    "-5 + 3";
    "1 < 2 andalso 2 < 3";
    "1 > 2 orelse 3 >= 3";
    "not (1 = 2)";
    "\"foo\" ^ \"bar\" ^ itos(42)";
    "strlen(substr(\"hello world\", 6, 5))";
    "if 3 > 2 then \"yes\" else \"no\"";
    "let val x : int = 2 val y : int = x * x in x + y end";
    "let val x : int = 1 in let val x : int = x + 1 in x * 10 end end";
    "#2 (1, \"two\", true)";
    "#1 #3 (1, 2, (7, 8))";
    "(print(\"side\"); 9)";
    "try 1 / 0 handle DivByZero => 42 end";
    "try strget(\"abc\", 5) handle OutOfBounds => 'z' end";
    "try (try 1/0 handle OutOfBounds => 1 end) handle DivByZero => 2 end";
    "min(max(3, 7), abs(-5))";
    "charPos('A') + charPos(chr(66))";
    "if even(4) then 10.0.0.1 else 10.0.0.2";
    "htos(10.1.2.3)";
    "false andalso 1 / 0 = 0";
    "true orelse 1 / 0 = 0";
  ]

let backends_agree_on_corpus () =
  List.iter (fun source -> ignore (tri_eval source)) expression_corpus

let backends_agree_with_globals () =
  let globals = [ ("base", Value.Vint 100); ("tag", Value.Vstring "t") ] in
  ignore (tri_eval ~globals "base + 1");
  ignore (tri_eval ~globals "tag ^ itos(base)")

(* Evaluate a program's global values the way Runtime.install does. *)
let globals_of checked =
  let world, _, _ = World.dummy () in
  List.fold_left
    (fun globals decl ->
      match decl with
      | Planp.Ast.Dval ({ Planp.Ast.bind_name; bind_expr; _ }, _) ->
          globals @ [ (bind_name, Interp.eval_const ~world ~globals bind_expr) ]
      | _ -> globals)
    [] checked.Planp.Typecheck.program

(* Run a whole program's channel on all three backends; [] when no channel
   of the program treats the packet. *)
let channel_tri_run source packet =
  let checked =
    Planp.Typecheck.check_exn ~prims:Prim.type_lookup (Planp.Parser.parse source)
  in
  let globals = globals_of checked in
  let results =
    List.filter_map
      (fun backend ->
        let compiled = backend.Backend.compile checked ~globals in
        (* pick the first channel that decodes the packet *)
        let rec first = function
          | [] -> None
          | (chan, exec) :: rest -> (
              match Pkt_codec.decode chan.Planp.Ast.pkt_type packet with
              | Some pkt -> Some (chan, exec, pkt)
              | None -> first rest)
        in
        match first compiled with
        | None -> None
        | Some (chan, exec, pkt) ->
            let world, prints, emissions = World.dummy () in
            let ss =
              match chan.Planp.Ast.initstate with
              | Some _ -> Value.Vtable (Hashtbl.create 8)
              | None -> Value.default_of chan.Planp.Ast.ss_type
            in
            let ps', _ss' = exec world ~ps:(Value.Vint 0) ~ss ~pkt in
            Some (backend.Backend.backend_name, ps', prints (), emissions ()))
      (Backends.all ())
  in
  results

let bundled_asp_differential () =
  let sources =
    [
      Asp.Audio_asp.client_program ();
      Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
        ~servers:("10.3.0.1", "10.3.0.2") ();
    ]
  in
  let packet =
    Packet.tcp
      ~src:(Netsim.Addr.of_string "192.168.0.9")
      ~dst:(Netsim.Addr.of_string "10.3.0.100")
      ~src_port:1234 ~dst_port:80 (Payload.of_string "GET /index.html")
  in
  let udp_packet =
    Packet.udp
      ~src:(Netsim.Addr.of_string "192.168.0.9")
      ~dst:(Netsim.Addr.of_string "10.3.0.100")
      ~src_port:5004 ~dst_port:5004
      (Planp_runtime.Audio_frame.encode
         (Planp_runtime.Audio_frame.synth ~seq:0 ~frames:20 ~phase:0))
  in
  let compared = ref 0 in
  List.iter
    (fun source ->
      List.iter
        (fun packet ->
          match channel_tri_run source packet with
          | [] -> () (* program has no channel for this packet: fine *)
          | [ (_, ps_a, pr_a, em_a); (_, ps_b, pr_b, em_b); (_, ps_c, pr_c, em_c) ]
            ->
              incr compared;
              checkb "states agree" true
                (Value.equal ps_a ps_b && Value.equal ps_b ps_c);
              Alcotest.(check (list string)) "prints agree" pr_a pr_b;
              Alcotest.(check (list string)) "prints agree (vm)" pr_a pr_c;
              check "emission count jit" (List.length em_a) (List.length em_b);
              check "emission count vm" (List.length em_a) (List.length em_c);
              List.iter2
                (fun (_, _, va) (_, _, vb) ->
                  checkb "emitted values agree" true (Value.equal va vb))
                em_a em_b
          | _ -> Alcotest.fail "three backends expected")
        [ packet; udp_packet ])
    sources;
  checkb "at least two comparisons ran" true (!compared >= 2)

(* ---------- the JIT specifically ---------- *)

let jit_with_params () =
  let expr = Planp.Parser.parse_expr "a * 10 + b" in
  let code = Specialize.compile_expr ~globals:[] ~params:[ "a"; "b" ] expr in
  let world, _, _ = World.dummy () in
  check "slots" 42
    (Value.as_int (Specialize.run code world [ Value.Vint 4; Value.Vint 2 ]))

let jit_function_calls () =
  let source =
    "fun sq(n : int) : int = n * n\n\
     fun hyp2(a : int, b : int) : int = sq(a) + sq(b)\n\
     channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     (deliver(p); (hyp2(3, 4), ss))"
  in
  let packet = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty in
  match channel_tri_run source packet with
  | (_, ps, _, _) :: rest ->
      check "25" 25 (Value.as_int ps);
      List.iter (fun (_, ps', _, _) -> checkb "same" true (Value.equal ps ps')) rest
  | [] -> Alcotest.fail "no backends"

let codegen_time_positive () =
  let checked =
    Planp.Typecheck.check_exn ~prims:Prim.type_lookup
      (Planp.Parser.parse (Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" ()))
  in
  let globals = globals_of checked in
  List.iter
    (fun backend ->
      let ms = Backends.codegen_time_ms backend checked ~globals ~repeats:3 in
      checkb
        (backend.Backend.backend_name ^ " codegen time sane")
        true
        (ms >= 0.0 && ms < 1000.0))
    (Backends.all ())

(* ---------- the bytecode VM specifically ---------- *)

let vm_disassembly () =
  let unit_ =
    Bytecomp.compile_expr ~globals:[] ~params:[]
      (Planp.Parser.parse_expr "if 1 < 2 then 10 else 20")
  in
  let text = Bytecode.disassemble unit_.Bytecode.funcs.(0) in
  checkb "has jump" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains text "jump_if_false");
  checkb "ends with return" true
    (unit_.Bytecode.funcs.(0).Bytecode.code
     |> fun code -> code.(Array.length code - 1) = Bytecode.Return)

let vm_deep_expression () =
  (* A long right-nested concat exercises operand-stack growth. *)
  let source =
    String.concat " ^ " (List.init 100 (fun i -> Printf.sprintf "\"%d\"" i))
  in
  let expected = String.concat "" (List.init 100 string_of_int) in
  checks "deep concat" expected (Value.as_string (tri_eval source))

let vm_try_across_calls () =
  (* An exception raised inside a called function propagates to the caller
     frame's handler. *)
  let source =
    "fun boom(n : int) : int = n / 0\n\
     channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     (deliver(p); try (boom(1), ss) handle DivByZero => (7, ss) end)"
  in
  let packet = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty in
  List.iter
    (fun (name, ps, _, _) ->
      checkb (name ^ " handled cross-frame") true (Value.equal (Value.Vint 7) ps))
    (channel_tri_run source packet)

let deep_nesting_stress () =
  (* 400 nested lets: exercises frame sizing in the JIT and locals in the
     VM far beyond what real ASPs use. *)
  let depth = 400 in
  let buffer = Buffer.create 4096 in
  for i = 0 to depth - 1 do
    Buffer.add_string buffer
      (Printf.sprintf "let val x%d : int = %s + 1 in "
         i (if i = 0 then "0" else Printf.sprintf "x%d" (i - 1)))
  done;
  Buffer.add_string buffer (Printf.sprintf "x%d" (depth - 1));
  for _ = 1 to depth do
    Buffer.add_string buffer " end"
  done;
  let expected = Value.Vint depth in
  let result = tri_eval (Buffer.contents buffer) in
  checkb "deep lets" true (Value.equal expected result)

let wide_tuple_projection () =
  (* Regression for tuple projection on wide tuples: fields are stored in an
     array, so #k must be O(1) and index the right slot on every backend. *)
  let tuple_src =
    "(" ^ String.concat ", " (List.init 32 (fun i -> string_of_int (i + 1))) ^ ")"
  in
  List.iter
    (fun k ->
      let v = tri_eval (Printf.sprintf "#%d %s" k tuple_src) in
      check (Printf.sprintf "field %d" k) k (Value.as_int v))
    [ 1; 2; 16; 31; 32 ]

let vm_superinstructions () =
  (* The peephole pass fuses Load/Const + Bin and compare + Jump_if_false;
     the fused forms must show up in the disassembly and compute the same
     results (tri_eval cross-checks against the interpreter). *)
  let disasm source =
    let unit_ =
      Bytecomp.compile_expr ~globals:[] ~params:[]
        (Planp.Parser.parse_expr source)
    in
    Bytecode.disassemble unit_.Bytecode.funcs.(0)
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let load_bin = "let val x : int = 2 in 1 + x end" in
  checkb "load_bin fused" true (contains (disasm load_bin) "load_bin");
  check "load_bin result" 3 (Value.as_int (tri_eval load_bin));
  let const_bin = "if 1 < 2 then 10 else 20" in
  checkb "const_bin fused" true (contains (disasm const_bin) "const_bin");
  check "const_bin result" 10 (Value.as_int (tri_eval const_bin));
  let cmp_jump =
    "let val x : int = 3 val y : int = 10 in if x * 2 < y + 1 then 1 else 2 end"
  in
  checkb "cmp_jump fused" true (contains (disasm cmp_jump) "cmp_jump");
  check "cmp_jump result" 1 (Value.as_int (tri_eval cmp_jump))

(* ---------- constant folding ---------- *)

let fold_specific_cases () =
  let fold ?(globals = []) src =
    Planp.Pretty.expr_to_string
      (Planp_jit.Fold.expr ~globals (Planp.Parser.parse_expr src))
  in
  checks "arith" "7" (fold "1 + 2 * 3");
  checks "comparison" "true" (fold "2 < 3");
  checks "dead branch pruned" "10" (fold "if 1 = 1 then 10 else crash(1)");
  checks "short-circuit" "false" (fold "1 > 2 andalso f()");
  checks "concat" "\"ab3\"" (fold "\"a\" ^ \"b\" ^ itos(3)");
  checks "global inlined" "42" (fold ~globals:[ ("answer", Value.Vint 42) ] "answer");
  checks "let literal propagates" "9"
    (fold "let val x : int = 4 in x + 5 end");
  (* a literal division stays: its exception is run-time behaviour *)
  checks "division kept" "(1 / 0)" (fold "1 / 0");
  (* shadowing must poison the outer literal *)
  checks "shadow poisons"
    "let
  val answer : int = f()
in
  answer
end"
    (fold ~globals:[ ("answer", Value.Vint 42) ]
       "let val answer : int = f() in answer end")

let fold_shrinks_gateway () =
  let checked =
    Planp.Typecheck.check_exn ~prims:Prim.type_lookup
      (Planp.Parser.parse
         (Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
            ~servers:("10.3.0.1", "10.3.0.2") ()))
  in
  let globals = globals_of checked in
  let folded = Planp_jit.Fold.program checked ~globals in
  let size program =
    List.fold_left
      (fun acc chan -> acc + Planp_jit.Fold.count_nodes chan.Planp.Ast.body)
      0
      (Planp.Ast.channels program)
  in
  checkb "folding does not grow the program" true
    (size folded.Planp.Typecheck.program <= size checked.Planp.Typecheck.program)

let fold_preserves_semantics () =
  (* The folded jit backend must agree with the unfolded one on the real
     ASPs, packet for packet. *)
  let source =
    Asp.Audio_asp.router_program ~iface:1 ()
  in
  let checked =
    Planp.Typecheck.check_exn ~prims:Prim.type_lookup (Planp.Parser.parse source)
  in
  let globals = globals_of checked in
  let frame = Planp_runtime.Audio_frame.synth ~seq:4 ~frames:30 ~phase:1 in
  let packet =
    Packet.udp ~src:1 ~dst:2 ~src_port:5004 ~dst_port:5004
      (Planp_runtime.Audio_frame.encode frame)
  in
  let run backend =
    let compiled = backend.Backend.compile checked ~globals in
    let chan, exec = List.hd compiled in
    let pkt = Option.get (Pkt_codec.decode chan.Planp.Ast.pkt_type packet) in
    let world, _, emissions = World.dummy () in
    let ps, _ = exec world ~ps:(Value.Vint 0) ~ss:(Value.Vint 0) ~pkt in
    (ps, List.length (emissions ()))
  in
  let folded = run Backends.jit in
  let unfolded = run Backends.jit_nofold in
  checkb "same state" true (Value.equal (fst folded) (fst unfolded));
  check "same emissions" (snd unfolded) (snd folded)

let backends_list () =
  check "three backends" 3 (List.length (Backends.all ()));
  checkb "lookup" true (Option.is_some (Backends.by_name "jit"));
  checkb "ablation backend" true (Option.is_some (Backends.by_name "jit-nofold"));
  checkb "unknown" true (Option.is_none (Backends.by_name "llvm"))

let () =
  Alcotest.run "planp-jit"
    [
      ( "differential",
        [
          Alcotest.test_case "expression corpus" `Quick backends_agree_on_corpus;
          Alcotest.test_case "globals" `Quick backends_agree_with_globals;
          Alcotest.test_case "bundled ASPs" `Quick bundled_asp_differential;
        ] );
      ( "jit",
        [
          Alcotest.test_case "parameters" `Quick jit_with_params;
          Alcotest.test_case "function calls" `Quick jit_function_calls;
          Alcotest.test_case "codegen time" `Quick codegen_time_positive;
        ] );
      ( "vm",
        [
          Alcotest.test_case "disassembly" `Quick vm_disassembly;
          Alcotest.test_case "superinstructions" `Quick vm_superinstructions;
          Alcotest.test_case "wide tuple projection" `Quick wide_tuple_projection;
          Alcotest.test_case "deep expression" `Quick vm_deep_expression;
          Alcotest.test_case "deep nesting stress" `Quick deep_nesting_stress;
          Alcotest.test_case "try across calls" `Quick vm_try_across_calls;
          Alcotest.test_case "backend list" `Quick backends_list;
        ] );
      ( "fold",
        [
          Alcotest.test_case "specific cases" `Quick fold_specific_cases;
          Alcotest.test_case "shrinks the gateway" `Quick fold_shrinks_gateway;
          Alcotest.test_case "preserves semantics" `Quick fold_preserves_semantics;
        ] );
    ]
