(* Unit tests for the network simulator substrate. *)

module Heap = Netsim.Heap
module Sched = Netsim.Sched
module Engine = Netsim.Engine
module Addr = Netsim.Addr
module Payload = Netsim.Payload
module Packet = Netsim.Packet
module Flowstat = Netsim.Flowstat
module Link = Netsim.Link
module Segment = Netsim.Segment
module Node = Netsim.Node
module Routing = Netsim.Routing
module Topology = Netsim.Topology
module Multicast = Netsim.Multicast

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ---------- heap ---------- *)

let heap_orders_by_time () =
  let heap = Heap.create () in
  List.iter (fun t -> Heap.add heap ~time:t t) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop heap with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !order)

let heap_fifo_on_ties () =
  let heap = Heap.create () in
  List.iter (fun v -> Heap.add heap ~time:1.0 v) [ "a"; "b"; "c" ];
  let next () = snd (Option.get (Heap.pop heap)) in
  checks "first" "a" (next ());
  checks "second" "b" (next ());
  checks "third" "c" (next ())

let heap_grows () =
  let heap = Heap.create () in
  for i = 1000 downto 1 do
    Heap.add heap ~time:(float_of_int i) i
  done;
  check "size" 1000 (Heap.size heap);
  let first = Option.get (Heap.pop heap) in
  check "min" 1 (snd first);
  Heap.clear heap;
  checkb "empty after clear" true (Heap.is_empty heap)

let heap_peek () =
  let heap = Heap.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Heap.peek_time heap);
  Heap.add heap ~time:7.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.0) (Heap.peek_time heap);
  check "size unchanged by peek" 1 (Heap.size heap)

(* ---------- sched (calendar queue) ---------- *)

let drain_sched sched =
  let cell = { Sched.v = neg_infinity } in
  let rec go acc =
    if Sched.is_empty sched then List.rev acc
    else
      let v = Sched.pop sched ~into:cell in
      go ((cell.Sched.v, v) :: acc)
  in
  go []

let sched_orders_by_time () =
  let sched = Sched.create ~dummy:0.0 () in
  List.iter (fun t -> Sched.add sched ~time:t t) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check "size" 5 (Sched.size sched);
  let popped = drain_sched sched in
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.map fst popped);
  checkb "payload matches pop time" true
    (List.for_all (fun (t, v) -> t = v) popped)

let sched_fifo_on_ties () =
  let sched = Sched.create ~dummy:"" () in
  List.iter (fun v -> Sched.add sched ~time:1.0 v) [ "a"; "b"; "c" ];
  let cell = { Sched.v = 0.0 } in
  checks "first" "a" (Sched.pop sched ~into:cell);
  checks "second" "b" (Sched.pop sched ~into:cell);
  checks "third" "c" (Sched.pop sched ~into:cell)

let sched_stamped_keeps_position () =
  (* A seq reserved before later insertions keeps its FIFO rank even when
     the event itself is scheduled afterwards — the link-ring pattern, where
     a packet's stamp is reserved at push time but the scheduler entry is
     re-armed later from the ring head. *)
  let sched = Sched.create ~dummy:"" () in
  let early = Sched.fresh_seq sched in
  Sched.add sched ~time:1.0 "second";
  Sched.add_stamped sched ~time:1.0 ~seq:early "first";
  let cell = { Sched.v = 0.0 } in
  checks "stamped first" "first" (Sched.pop sched ~into:cell);
  checks "then plain" "second" (Sched.pop sched ~into:cell)

let sched_grows_and_clears () =
  let sched = Sched.create ~dummy:0 () in
  for i = 1000 downto 1 do
    Sched.add sched ~time:(float_of_int i) i
  done;
  check "size" 1000 (Sched.size sched);
  let cell = { Sched.v = 0.0 } in
  check "min" 1 (Sched.pop sched ~into:cell);
  Sched.clear sched;
  checkb "empty after clear" true (Sched.is_empty sched);
  (* slots are recycled through the free list, not leaked *)
  Sched.add sched ~time:2.5 7;
  check "usable after clear" 7 (Sched.pop sched ~into:cell);
  checkf "pop time" 2.5 cell.Sched.v

let sched_peek () =
  let sched = Sched.create ~dummy:() () in
  let cell = { Sched.v = neg_infinity } in
  checkb "empty" false (Sched.peek_time sched ~into:cell);
  checkf "cell untouched when empty" neg_infinity cell.Sched.v;
  Sched.add sched ~time:7.0 ();
  checkb "peek" true (Sched.peek_time sched ~into:cell);
  checkf "peek time" 7.0 cell.Sched.v;
  check "size unchanged by peek" 1 (Sched.size sched);
  Alcotest.check_raises "pop on empty"
    (Invalid_argument "Sched.pop: empty")
    (fun () ->
      Sched.clear sched;
      ignore (Sched.pop sched ~into:cell))

let sched_overflow_and_rotation () =
  (* 16 buckets x 1 ms puts the initial horizon at 16 ms: events past it
     overflow into the heap while the wheel is busy, then sweep back into
     the wheel at rotations — pop order must not care. *)
  let sched = Sched.create ~nbuckets:16 ~dummy:0.0 () in
  Sched.add sched ~time:0.0 0.0;
  List.iter (fun t -> Sched.add sched ~time:t t) [ 0.5; 0.25; 0.75 ];
  check "wheel holds the near event" 1 (Sched.wheel_length sched);
  check "far events overflow" 3 (Sched.overflow_length sched);
  Alcotest.(check (list (float 0.0)))
    "in order across the horizon"
    [ 0.0; 0.25; 0.5; 0.75 ]
    (List.map fst (drain_sched sched));
  (* with the queue idle a far-future add re-anchors the wheel instead of
     bouncing through the heap *)
  Sched.add sched ~time:1000.0 1000.0;
  check "re-anchored, not overflowed" 0 (Sched.overflow_length sched);
  check "in the wheel" 1 (Sched.wheel_length sched)

(* ---------- engine ---------- *)

let engine_runs_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~at:2.0 (fun () -> log := 2 :: !log);
  Engine.schedule engine ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule engine ~at:3.0 (fun () -> log := 3 :: !log);
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3.0 (Engine.now engine)

let engine_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule engine ~at:1.0 (fun () -> incr fired);
  Engine.schedule engine ~at:5.0 (fun () -> incr fired);
  Engine.run_until engine ~stop:2.0;
  check "only first" 1 !fired;
  checkf "clock moved to stop" 2.0 (Engine.now engine);
  check "second still queued" 1 (Engine.pending engine)

let engine_rejects_past () =
  let engine = Engine.create () in
  Engine.schedule engine ~at:5.0 (fun () -> ());
  Engine.run engine;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time 1 is before now (5)")
    (fun () -> Engine.schedule engine ~at:1.0 (fun () -> ()))

let engine_delivery_ring () =
  (* The typed-event fast path: packets pushed into a delivery ring pop in
     FIFO order at their stamped times, and non-monotone arrivals are
     rejected (a link direction's finish times only move forward). *)
  let engine = Engine.create () in
  let d = Engine.delivery () in
  let got = ref [] in
  Engine.set_delivery_receiver d (fun p ->
      got := (Engine.now engine, p.Packet.uid) :: !got);
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let p1 = Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty in
  let p2 = Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty in
  Engine.push_delivery engine d ~at:1.0 p1;
  Engine.push_delivery engine d ~at:2.0 p2;
  check "backlog" 2 (Engine.delivery_backlog d);
  check "ring residents count as pending" 2 (Engine.pending engine);
  Alcotest.check_raises "monotone arrivals enforced"
    (Invalid_argument "Engine.push_delivery: arrival times must be monotone")
    (fun () -> Engine.push_delivery engine d ~at:1.5 p1);
  Engine.run engine;
  match List.rev !got with
  | [ (t1, u1); (t2, u2) ] ->
      checkf "first at 1.0" 1.0 t1;
      checkf "second at 2.0" 2.0 t2;
      check "fifo" p1.Packet.uid u1;
      check "fifo 2" p2.Packet.uid u2
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let engine_nested_scheduling () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Engine.schedule_after engine ~delay:0.5 tick
  in
  Engine.schedule engine ~at:0.0 tick;
  Engine.run engine;
  check "all ticks" 10 !count;
  checkf "final clock" 4.5 (Engine.now engine)

(* ---------- addr ---------- *)

let addr_roundtrip () =
  List.iter
    (fun s -> checks s s (Addr.to_string (Addr.of_string s)))
    [ "0.0.0.0"; "131.254.60.81"; "255.255.255.255"; "10.0.0.1" ]

let addr_rejects_bad () =
  List.iter
    (fun s ->
      checkb s true (Option.is_none (Addr.of_string_opt s)))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1..2.3" ]

let addr_multicast_range () =
  checkb "224.0.0.0" true (Addr.is_multicast (Addr.of_string "224.0.0.0"));
  checkb "239.255.255.255" true (Addr.is_multicast (Addr.of_string "239.255.255.255"));
  checkb "223.255.255.255" false (Addr.is_multicast (Addr.of_string "223.255.255.255"));
  checkb "240.0.0.0" false (Addr.is_multicast (Addr.of_string "240.0.0.0"))

let addr_subnets () =
  let a = Addr.of_string "10.1.2.3" and b = Addr.of_string "10.1.9.9" in
  checkb "/16 same" true (Addr.same_subnet ~mask_bits:16 a b);
  checkb "/24 differs" false (Addr.same_subnet ~mask_bits:24 a b);
  checkb "/0 always" true (Addr.same_subnet ~mask_bits:0 a b)

(* ---------- payload ---------- *)

let payload_accessors () =
  let p = Payload.of_string "\x01\x02\x03\x04" in
  check "u8" 1 (Payload.get_u8 p 0);
  check "u16" 0x0102 (Payload.get_u16 p 0);
  check "u32" 0x01020304 (Payload.get_u32 p 0);
  Alcotest.check_raises "oob"
    (Invalid_argument "Payload.get_u32: offset 1 (width 4) out of bounds (len 4)")
    (fun () -> ignore (Payload.get_u32 p 1))

let payload_writer_reader () =
  let w = Payload.Writer.create () in
  Payload.Writer.u8 w 7;
  Payload.Writer.u16 w 600;
  Payload.Writer.u32 w 123456;
  Payload.Writer.string w "xyz";
  let p = Payload.Writer.finish w in
  check "length" 10 (Payload.length p);
  let r = Payload.Reader.create p in
  check "u8" 7 (Payload.Reader.u8 r);
  check "u16" 600 (Payload.Reader.u16 r);
  check "u32" 123456 (Payload.Reader.u32 r);
  checks "string" "xyz" (Payload.Reader.string r 3);
  check "remaining" 0 (Payload.Reader.remaining r)

let payload_sub_concat () =
  let p = Payload.of_string "hello world" in
  let sub = Payload.sub p ~pos:6 ~len:5 in
  checks "sub" "world" (Payload.to_string sub);
  checks "concat" "worldhello world"
    (Payload.to_string (Payload.concat [ sub; p ]));
  check "fill" 3 (Payload.length (Payload.fill 3 0xFF));
  check "fill byte" 0xFF (Payload.get_u8 (Payload.fill 3 0xFF) 2)

let payload_slice_of_slice () =
  (* Slices are views: a slice of a slice must address the right absolute
     bytes and report bounds relative to its own length. *)
  let p = Payload.of_string "abcdefghij" in
  let s1 = Payload.sub p ~pos:2 ~len:6 in
  let s2 = Payload.sub s1 ~pos:1 ~len:4 in
  checks "slice of slice" "defg" (Payload.to_string s2);
  check "slice u8" (Char.code 'e') (Payload.get_u8 s2 1);
  check "full-range sub is free" (Payload.length s2)
    (Payload.length (Payload.sub s2 ~pos:0 ~len:4));
  Alcotest.check_raises "slice-relative bounds"
    (Invalid_argument "Payload.get_u8: offset 4 (width 1) out of bounds (len 4)")
    (fun () -> ignore (Payload.get_u8 s2 4));
  Alcotest.check_raises "sub past end"
    (Invalid_argument "Payload.sub: offset 3 (width 2) out of bounds (len 4)")
    (fun () -> ignore (Payload.sub s2 ~pos:3 ~len:2))

(* Build the same byte sequence under several representations: flat,
   sliced, concatenated ropes of different shapes, and compacted. *)
let payload_representations s =
  let flat = Payload.of_string s in
  let n = String.length s in
  let padded =
    Payload.sub (Payload.of_string ("xx" ^ s ^ "yy")) ~pos:2 ~len:n
  in
  let split k =
    Payload.concat
      [ Payload.of_string (String.sub s 0 k);
        Payload.of_string (String.sub s k (n - k)) ]
  in
  let nested =
    Payload.concat
      [ Payload.sub flat ~pos:0 ~len:(n / 2); Payload.sub flat ~pos:(n / 2) ~len:(n - (n / 2)) ]
  in
  [ flat; padded; split 1; split (n - 1); nested;
    Payload.compact (Payload.sub (split 2) ~pos:0 ~len:n) ]

let payload_equal_pp_parity () =
  let s = "the quick brown fox" in
  let reprs = payload_representations s in
  List.iteri
    (fun i p ->
      checks (Printf.sprintf "repr %d bytes" i) s (Payload.to_string p);
      List.iteri
        (fun j q ->
          checkb (Printf.sprintf "equal %d %d" i j) true (Payload.equal p q);
          checks
            (Printf.sprintf "pp parity %d %d" i j)
            (Format.asprintf "%a" Payload.pp p)
            (Format.asprintf "%a" Payload.pp q))
        reprs)
    reprs;
  checkb "different lengths differ" false
    (Payload.equal (Payload.of_string "ab") (Payload.of_string "abc"));
  checkb "different bytes differ" false
    (Payload.equal (Payload.of_string "ab") (Payload.of_string "ac"))

let payload_reader_parity () =
  (* The Reader must decode identically from any representation. *)
  let w = Payload.Writer.create () in
  Payload.Writer.u8 w 9;
  Payload.Writer.u16 w 517;
  Payload.Writer.u32 w 0xdeadbeef;
  Payload.Writer.string w "tail";
  let s = Payload.to_string (Payload.Writer.finish w) in
  List.iter
    (fun p ->
      let r = Payload.Reader.create p in
      check "u8" 9 (Payload.Reader.u8 r);
      check "u16" 517 (Payload.Reader.u16 r);
      check "u32" 0xdeadbeef (Payload.Reader.u32 r);
      checks "rest" "tail" (Payload.to_string (Payload.Reader.rest r)))
    (payload_representations s)

let payload_writer_raw_rope () =
  (* Writer.raw walks a pending concatenation without flattening it. *)
  let rope =
    Payload.concat
      [ Payload.of_string "ab";
        Payload.concat [ Payload.of_string "cd"; Payload.of_string "ef" ];
        Payload.sub (Payload.of_string "xghx") ~pos:1 ~len:2 ]
  in
  let w = Payload.Writer.create () in
  Payload.Writer.raw w rope;
  checks "raw over rope" "abcdefgh" (Payload.to_string (Payload.Writer.finish w));
  (* compacting afterwards preserves contents and identity of bytes *)
  checks "compact" "abcdefgh" (Payload.to_string (Payload.compact rope))

(* ---------- packet ---------- *)

let packet_wire_size () =
  let body = Payload.fill 100 0 in
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  check "tcp" (20 + 20 + 100)
    (Packet.wire_size (Packet.tcp ~src ~dst ~src_port:1 ~dst_port:2 body));
  check "udp" (20 + 8 + 100)
    (Packet.wire_size (Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 body));
  check "raw" (20 + 100) (Packet.wire_size (Packet.make ~src ~dst Packet.Raw body))

let packet_ttl () =
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let p = Packet.udp ~ttl:2 ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty in
  let p1 = Option.get (Packet.decrement_ttl p) in
  check "ttl decremented" 1 p1.Packet.ttl;
  checkb "expires" true (Option.is_none (Packet.decrement_ttl p1))

let packet_rewrite_keeps_uid () =
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let p = Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty in
  let p' = Packet.with_dst p (Addr.of_string "3.3.3.3") in
  check "same uid" p.Packet.uid p'.Packet.uid;
  let clone = Packet.clone p in
  checkb "clone differs" true (clone.Packet.uid <> p.Packet.uid)

(* ---------- flowstat ---------- *)

let flowstat_window () =
  let stat = Flowstat.create ~window:1.0 () in
  Flowstat.record stat ~now:0.0 1000;
  Flowstat.record stat ~now:0.5 1000;
  checkf "both in window" (16000.0) (Flowstat.rate_bps stat ~now:0.9);
  (* at t=1.4 the first sample (t=0) has left the window *)
  checkf "one expired" 8000.0 (Flowstat.rate_bps stat ~now:1.4);
  checkf "all expired" 0.0 (Flowstat.rate_bps stat ~now:3.0);
  check "totals unaffected" 2000 (Flowstat.total_bytes stat);
  check "packets" 2 (Flowstat.total_packets stat)

let flowstat_series () =
  let engine = Engine.create () in
  let stat = Flowstat.create ~window:1.0 () in
  let series = Flowstat.Series.attach engine stat ~period:1.0 ~until:3.0 in
  Engine.schedule engine ~at:0.5 (fun () -> Flowstat.record stat ~now:0.5 125);
  Engine.run_until engine ~stop:3.5;
  match Flowstat.Series.points series with
  | [ (t1, r1); (_, r2); (_, r3) ] ->
      checkf "t1" 1.0 t1;
      checkf "r1 = 1000 bps" 1000.0 r1;
      checkf "r2 expired" 0.0 r2;
      checkf "r3 expired" 0.0 r3
  | points -> Alcotest.failf "expected 3 points, got %d" (List.length points)

(* ---------- link ---------- *)

let link_timing () =
  let engine = Engine.create () in
  (* 8 kb/s: a 100-byte packet (+28 header = 128B) serializes in 0.128 s. *)
  let link = Link.create engine ~bandwidth_bps:8000.0 ~latency:0.1 () in
  let arrival = ref 0.0 in
  Link.set_receiver link Link.B (fun _ -> arrival := Engine.now engine);
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let p = Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 (Payload.fill 100 0) in
  checkb "sent" true (Link.send link ~from:Link.A p);
  Engine.run engine;
  checkf "serialization + latency" 0.228 !arrival

let link_queue_drop () =
  let engine = Engine.create () in
  let link =
    Link.create ~queue_capacity:300 engine ~bandwidth_bps:8000.0 ~latency:0.0 ()
  in
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let send () =
    Link.send link ~from:Link.A
      (Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 (Payload.fill 100 0))
  in
  checkb "1st fits" true (send ());
  checkb "2nd fits" true (send ());
  checkb "3rd dropped" false (send ());
  check "drop counted" 1 (Link.drops link Link.A);
  checkb "backlog positive" true (Link.backlog_bytes link Link.A > 0)

let link_full_duplex () =
  let engine = Engine.create () in
  let link = Link.create engine ~bandwidth_bps:1e6 ~latency:0.001 () in
  let got_a = ref 0 and got_b = ref 0 in
  Link.set_receiver link Link.A (fun _ -> incr got_a);
  Link.set_receiver link Link.B (fun _ -> incr got_b);
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let p () = Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty in
  ignore (Link.send link ~from:Link.A (p ()));
  ignore (Link.send link ~from:Link.B (p ()));
  Engine.run engine;
  check "B received" 1 !got_b;
  check "A received" 1 !got_a

let link_burst_fifo () =
  (* Several packets in flight on one direction at once: the per-direction
     ring must deliver them in send order at the exact
     serialize-then-propagate times. 8 kb/s: each 128-byte frame
     serializes in 0.128 s. *)
  let engine = Engine.create () in
  let link = Link.create engine ~bandwidth_bps:8000.0 ~latency:0.1 () in
  let arrivals = ref [] in
  Link.set_receiver link Link.B (fun p ->
      match p.Packet.l4 with
      | Packet.Udp { Packet.udp_src; _ } ->
          arrivals := (Engine.now engine, udp_src) :: !arrivals
      | _ -> ());
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  for i = 1 to 3 do
    checkb "sent" true
      (Link.send link ~from:Link.A
         (Packet.udp ~src ~dst ~src_port:i ~dst_port:9 (Payload.fill 100 0)))
  done;
  checkb "backlog covers the queued frames" true
    (Link.backlog_bytes link Link.A >= 256);
  Engine.run engine;
  match List.rev !arrivals with
  | [ (t1, q1); (t2, q2); (t3, q3) ] ->
      check "send order 1" 1 q1;
      check "send order 2" 2 q2;
      check "send order 3" 3 q3;
      checkf "first arrival" 0.228 t1;
      checkf "second arrival" 0.356 t2;
      checkf "third arrival" 0.484 t3
  | l -> Alcotest.failf "expected 3 arrivals, got %d" (List.length l)

let link_metrics_flush () =
  (* Per-packet metrics are batched into raw counters and flushed when the
     engine goes idle: after a run the exported values must equal the raw
     counts exactly. *)
  let engine = Engine.create () in
  let link =
    Link.create ~name:"flush-probe" ~queue_capacity:300 engine
      ~bandwidth_bps:8000.0 ~latency:0.0 ()
  in
  Link.set_receiver link Link.B (fun _ -> ());
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let send () =
    Link.send link ~from:Link.A
      (Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 (Payload.fill 100 0))
  in
  ignore (send ());
  ignore (send ());
  ignore (send ());
  (* third exceeds the 300-byte queue *)
  Engine.run engine;
  let labels = [ ("link", "flush-probe"); ("dir", "a_to_b") ] in
  check "packets flushed" 2
    (Obs.Registry.count (Obs.Registry.counter ~labels "netsim.link.tx_packets"));
  check "bytes flushed" 256
    (Obs.Registry.count (Obs.Registry.counter ~labels "netsim.link.tx_bytes"));
  check "drops flushed" 1
    (Obs.Registry.count (Obs.Registry.counter ~labels "netsim.link.drops"));
  check "one backlog sample per carried packet" 2
    (Obs.Registry.observations
       (Obs.Registry.histogram ~labels "netsim.link.backlog_bytes"))

(* ---------- segment ---------- *)

let segment_broadcasts () =
  let engine = Engine.create () in
  let seg = Segment.create engine ~bandwidth_bps:1e6 ~latency:0.001 () in
  let got = Array.make 3 0 in
  let stations =
    Array.init 3 (fun i ->
        Segment.attach seg (fun ~l2_dst:_ _ -> got.(i) <- got.(i) + 1))
  in
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  ignore
    (Segment.send seg ~from:stations.(0) ~l2_dst:None
       (Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 Payload.empty));
  Engine.run engine;
  check "sender excluded" 0 got.(0);
  check "station 1" 1 got.(1);
  check "station 2" 1 got.(2);
  check "stations" 3 (Segment.station_count seg)

let segment_tap_sees_carried_only () =
  let engine = Engine.create () in
  let seg =
    Segment.create ~queue_capacity:200 engine ~bandwidth_bps:8000.0
      ~latency:0.0 ()
  in
  let s0 = Segment.attach seg (fun ~l2_dst:_ _ -> ()) in
  ignore (Segment.attach seg (fun ~l2_dst:_ _ -> ()));
  let tapped = ref 0 in
  Segment.set_tap seg (fun ~at:_ ~l2_dst:_ _ -> incr tapped);
  let src = Addr.of_string "1.1.1.1" and dst = Addr.of_string "2.2.2.2" in
  let send () =
    Segment.send seg ~from:s0 ~l2_dst:None
      (Packet.udp ~src ~dst ~src_port:1 ~dst_port:2 (Payload.fill 100 0))
  in
  ignore (send ());
  ignore (send ());
  (* second one dropped: only 1 tap *)
  check "tap counts carried" 1 !tapped;
  check "drop" 1 (Segment.drops seg)

(* ---------- node + topology ---------- *)

let make_pair () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo a b);
  Topology.compute_routes topo;
  (topo, a, b)

let node_delivers_by_port () =
  let topo, a, b = make_pair () in
  let got_udp = ref 0 and got_tcp = ref 0 in
  Node.on_udp b ~port:53 (fun _ _ -> incr got_udp);
  Node.on_tcp b ~port:80 (fun _ _ -> incr got_tcp);
  Node.send_udp a ~dst:(Node.addr b) ~src_port:999 ~dst_port:53 Payload.empty;
  Node.send_tcp a ~dst:(Node.addr b) ~src_port:999 ~dst_port:80 Payload.empty;
  Node.send_udp a ~dst:(Node.addr b) ~src_port:999 ~dst_port:54 Payload.empty;
  Topology.run topo;
  check "udp" 1 !got_udp;
  check "tcp" 1 !got_tcp;
  check "unclaimed counted" 1 (Node.counters b).Node.dropped_unclaimed

let node_default_handler () =
  let topo, a, b = make_pair () in
  let got = ref 0 in
  Node.on_tcp_default b (fun _ _ -> incr got);
  Node.on_tcp b ~port:80 (fun _ _ -> ());
  Node.send_tcp a ~dst:(Node.addr b) ~src_port:1 ~dst_port:12345 Payload.empty;
  Node.send_tcp a ~dst:(Node.addr b) ~src_port:1 ~dst_port:80 Payload.empty;
  Topology.run topo;
  check "default only for unbound port" 1 !got

let forwarding_chain () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let r1 = Topology.add_host topo "r1" "10.0.0.2" in
  let r2 = Topology.add_host topo "r2" "10.0.0.3" in
  let b = Topology.add_host topo "b" "10.0.0.4" in
  ignore (Topology.connect topo a r1);
  ignore (Topology.connect topo r1 r2);
  ignore (Topology.connect topo r2 b);
  Topology.compute_routes topo;
  let got = ref None in
  Node.on_udp b ~port:7 (fun _ p -> got := Some p);
  Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty;
  Topology.run topo;
  (match !got with
  | Some p -> check "ttl decremented twice" 62 p.Packet.ttl
  | None -> Alcotest.fail "not delivered");
  check "r1 forwarded" 1 (Node.counters r1).Node.forwarded;
  check "r2 forwarded" 1 (Node.counters r2).Node.forwarded

let ttl_expiry_drops () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let r = Topology.add_host topo "r" "10.0.0.2" in
  let b = Topology.add_host topo "b" "10.0.0.3" in
  ignore (Topology.connect topo a r);
  ignore (Topology.connect topo r b);
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  Node.originate a
    (Packet.udp ~ttl:1 ~src:(Node.addr a) ~dst:(Node.addr b) ~src_port:7
       ~dst_port:7 Payload.empty);
  Topology.run topo;
  check "dropped at router" 0 !got;
  check "ttl drop counted" 1 (Node.counters r).Node.dropped_ttl

let segment_l2_filter_and_promisc () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let c = Topology.add_host topo "c" "10.0.0.3" in
  let seg = Topology.segment topo () in
  ignore (Topology.attach topo seg a);
  ignore (Topology.attach topo seg b);
  ignore (Topology.attach topo seg c);
  Topology.compute_routes topo;
  let seen_by_c = ref 0 in
  Node.set_promiscuous c true;
  Node.set_hook c (fun node ~ifindex ~l2_dst packet ->
      incr seen_by_c;
      Node.default_process node ~ifindex ~l2_dst packet);
  let got_b = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got_b);
  Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty;
  Topology.run topo;
  check "b received" 1 !got_b;
  check "c sniffed the frame" 1 !seen_by_c;
  (* c's default processing filters the foreign frame *)
  check "c filtered it" 1 (Node.counters c).Node.dropped_filtered

let multicast_delivery_through_router () =
  let topo = Topology.create () in
  let source = Topology.add_host topo "src" "10.0.0.1" in
  let router = Topology.add_host topo "r" "10.0.0.2" in
  let m1 = Topology.add_host topo "m1" "10.0.1.1" in
  let m2 = Topology.add_host topo "m2" "10.0.1.2" in
  let outsider = Topology.add_host topo "x" "10.0.1.3" in
  ignore (Topology.connect topo source router);
  let seg = Topology.segment topo () in
  ignore (Topology.attach topo seg router);
  ignore (Topology.attach topo seg m1);
  ignore (Topology.attach topo seg m2);
  ignore (Topology.attach topo seg outsider);
  Topology.compute_routes topo;
  let group = Addr.of_string "224.1.1.1" in
  Node.join_group m1 group;
  Node.join_group m2 group;
  let got = Array.make 3 0 in
  Node.on_udp m1 ~port:7 (fun _ _ -> got.(0) <- got.(0) + 1);
  Node.on_udp m2 ~port:7 (fun _ _ -> got.(1) <- got.(1) + 1);
  Node.on_udp outsider ~port:7 (fun _ _ -> got.(2) <- got.(2) + 1);
  Node.send_udp source ~dst:group ~src_port:7 ~dst_port:7 Payload.empty;
  Topology.run topo;
  check "member 1" 1 got.(0);
  check "member 2" 1 got.(1);
  check "outsider filtered" 0 got.(2)

let cpu_cost_serializes () =
  let topo, a, b = make_pair () in
  Node.set_processing_cost b 0.1;
  let timestamps = ref [] in
  Node.on_udp b ~port:7 (fun node _ ->
      timestamps := Engine.now (Node.engine node) :: !timestamps);
  for _ = 1 to 3 do
    Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty
  done;
  Topology.run topo;
  match List.rev !timestamps with
  | [ t1; t2; t3 ] ->
      checkb "spaced by cpu cost" true (t2 -. t1 > 0.099 && t3 -. t2 > 0.099)
  | l -> Alcotest.failf "expected 3 deliveries, got %d" (List.length l)

let routing_default_route () =
  let table = Routing.create () in
  let dst = Addr.of_string "9.9.9.9" in
  checkb "miss" true (Option.is_none (Routing.lookup table dst));
  Routing.set_default table (Some { Routing.ifindex = 1; next_hop = None });
  (match Routing.lookup table dst with
  | Some { Routing.ifindex; _ } -> check "default used" 1 ifindex
  | None -> Alcotest.fail "default not used");
  Routing.add_host table dst { Routing.ifindex = 2; next_hop = None };
  match Routing.lookup table dst with
  | Some { Routing.ifindex; _ } -> check "host route wins" 2 ifindex
  | None -> Alcotest.fail "host route missing"

let multicast_registry () =
  let registry = Multicast.create () in
  let group = Addr.of_string "224.0.0.9" in
  let a = Addr.of_string "1.1.1.1" and b = Addr.of_string "2.2.2.2" in
  Multicast.join registry ~group a;
  Multicast.join registry ~group b;
  Multicast.join registry ~group a;
  check "members deduped" 2 (List.length (Multicast.members registry ~group));
  Multicast.leave registry ~group a;
  checkb "a gone" false (Multicast.is_member registry ~group a);
  Multicast.leave registry ~group b;
  check "group removed" 0 (List.length (Multicast.groups registry));
  Alcotest.check_raises "non class-D"
    (Invalid_argument "Multicast: 10.0.0.1 is not a class-D address")
    (fun () -> Multicast.join registry ~group:(Addr.of_string "10.0.0.1") a)

(* ---------- tracer ---------- *)

let tracer_captures_segment () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let seg = Topology.segment topo () in
  ignore (Topology.attach topo seg a);
  ignore (Topology.attach topo seg b);
  Topology.compute_routes topo;
  let tracer = Netsim.Tracer.on_segment seg () in
  Node.on_udp b ~port:53 (fun _ _ -> ());
  Node.send_udp a ~dst:(Node.addr b) ~src_port:1111 ~dst_port:53 (Payload.fill 10 0);
  Node.send_tcp a ~dst:(Node.addr b) ~src_port:2222 ~dst_port:80 Payload.empty;
  Topology.run topo;
  check "two records" 2 (Netsim.Tracer.count tracer);
  check "one udp to 53" 1
    (List.length (Netsim.Tracer.filter tracer ~f:(Netsim.Tracer.udp_to_port 53)));
  check "udp bytes" 38
    (Netsim.Tracer.bytes tracer ~f:(Netsim.Tracer.udp_to_port 53));
  check "between a and b" 2
    (List.length
       (Netsim.Tracer.filter tracer
          ~f:(Netsim.Tracer.between (Node.addr a) (Node.addr b))));
  let dump = Netsim.Tracer.dump tracer in
  checkb "dump mentions port 53" true
    (let rec has i =
       i + 3 <= String.length dump && (String.sub dump i 3 = ":53" || has (i + 1))
     in
     has 0);
  Netsim.Tracer.clear tracer;
  check "cleared" 0 (Netsim.Tracer.count tracer)

let tracer_caps_records () =
  let tracer = Netsim.Tracer.create ~limit:3 () in
  for i = 1 to 5 do
    Netsim.Tracer.record_packet tracer ~at:(float_of_int i) ~l2_dst:None
      (Packet.udp ~src:1 ~dst:2 ~src_port:i ~dst_port:9 Payload.empty)
  done;
  check "capped" 3 (Netsim.Tracer.count tracer);
  check "evictions" 2 (Netsim.Tracer.dropped tracer);
  match Netsim.Tracer.records tracer with
  | first :: _ -> check "oldest kept is #3" 3 first.Netsim.Tracer.src_port
  | [] -> Alcotest.fail "no records"

(* ---------- link failure ---------- *)

let link_failure_and_recovery () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo a b in
  Topology.compute_routes topo;
  let got = ref 0 in
  Node.on_udp b ~port:7 (fun _ _ -> incr got);
  let send () =
    Node.send_udp a ~dst:(Node.addr b) ~src_port:7 ~dst_port:7 Payload.empty
  in
  send ();
  Topology.run topo;
  check "up: delivered" 1 !got;
  Netsim.Link.set_up link false;
  checkb "reports down" false (Netsim.Link.is_up link);
  send ();
  Topology.run topo;
  check "down: dropped" 1 !got;
  check "drop counted" 1 (Netsim.Link.drops link Netsim.Link.A);
  Netsim.Link.set_up link true;
  send ();
  Topology.run topo;
  check "recovered" 2 !got

(* ---------- summary ---------- *)

let summary_statistics () =
  let s = Netsim.Summary.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Netsim.Summary.mean s);
  List.iter (Netsim.Summary.add s) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check "count" 5 (Netsim.Summary.count s);
  checkf "mean" 3.0 (Netsim.Summary.mean s);
  checkf "min" 1.0 (Netsim.Summary.min s);
  checkf "max" 5.0 (Netsim.Summary.max s);
  checkf "p50" 3.0 (Netsim.Summary.percentile s 50.0);
  checkf "p100" 5.0 (Netsim.Summary.percentile s 100.0);
  checkf "p1" 1.0 (Netsim.Summary.percentile s 1.0);
  (* adding after a sorted query must still work *)
  Netsim.Summary.add s 10.0;
  checkf "max after add" 10.0 (Netsim.Summary.max s);
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Summary.percentile: p outside [0, 100]") (fun () ->
      ignore (Netsim.Summary.percentile s 150.0))

let summary_merge () =
  let a = Netsim.Summary.create () and b = Netsim.Summary.create () in
  List.iter (Netsim.Summary.add a) [ 1.0; 2.0 ];
  List.iter (Netsim.Summary.add b) [ 3.0; 4.0 ];
  Netsim.Summary.merge ~into:a b;
  check "merged count" 4 (Netsim.Summary.count a);
  checkf "merged mean" 2.5 (Netsim.Summary.mean a)

(* ---------- reliable transport ---------- *)

let reliable_in_order_delivery () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo a b);
  Topology.compute_routes topo;
  let received = ref [] in
  let _rx =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun m -> received := Payload.to_string m :: !received)
      ()
  in
  let tx =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
  in
  for i = 1 to 50 do
    Netsim.Reliable.Sender.send tx (Payload.of_string (string_of_int i))
  done;
  Topology.run topo;
  Alcotest.(check (list string))
    "all in order"
    (List.init 50 (fun i -> string_of_int (i + 1)))
    (List.rev !received);
  check "all acked" 49 (Netsim.Reliable.Sender.acked tx);
  check "nothing unacked" 0 (Netsim.Reliable.Sender.unacked tx);
  check "no retransmissions on a clean link" 0
    (Netsim.Reliable.Sender.retransmissions tx)

let reliable_survives_outage () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo a b in
  Topology.compute_routes topo;
  let received = ref 0 in
  let rx =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun _ -> incr received)
      ()
  in
  let tx =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
  in
  let engine = Topology.engine topo in
  (* Send a burst, cut the cable mid-flight, restore it later. *)
  Engine.schedule engine ~at:0.0 (fun () ->
      for i = 1 to 40 do
        Netsim.Reliable.Sender.send tx (Payload.of_string (string_of_int i))
      done);
  Engine.schedule engine ~at:0.001 (fun () -> Netsim.Link.set_up link false);
  Engine.schedule engine ~at:1.5 (fun () -> Netsim.Link.set_up link true);
  Topology.run_until topo ~stop:30.0;
  check "all 40 delivered" 40 !received;
  check "exactly once" 40 (Netsim.Reliable.Receiver.delivered rx);
  checkb "outage forced retransmissions" true
    (Netsim.Reliable.Sender.retransmissions tx > 0);
  check "all acked" 39 (Netsim.Reliable.Sender.acked tx)

let reliable_dedups () =
  (* Lose only ACKs: the receiver sees duplicates and must drop them. *)
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo a b);
  Topology.compute_routes topo;
  (* Swallow the first ACK by hooking b's... simpler: hook a to drop the
     first ACK it would receive. *)
  let dropped_one = ref false in
  Node.set_hook a (fun node ~ifindex ~l2_dst packet ->
      match packet.Packet.l4 with
      | Packet.Udp _ when not !dropped_one ->
          dropped_one := true (* swallow *)
      | _ -> Node.default_process node ~ifindex ~l2_dst packet);
  let received = ref 0 in
  let rx =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun _ -> incr received)
      ()
  in
  let tx =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
  in
  Netsim.Reliable.Sender.send tx (Payload.of_string "only");
  Topology.run_until topo ~stop:10.0;
  check "delivered once" 1 !received;
  checkb "duplicate discarded" true (Netsim.Reliable.Receiver.duplicates rx > 0)

let reliable_concurrent_streams () =
  (* Two independent streams share one link (distinct port pairs); each
     must deliver its own messages in order, exactly once, with no
     cross-talk — the deployment plane runs its capsule and reply streams
     over shared links exactly like this. *)
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo a b);
  Topology.compute_routes topo;
  let got1 = ref [] and got2 = ref [] in
  let rx1 =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun m -> got1 := Payload.to_string m :: !got1)
      ()
  in
  let rx2 =
    Netsim.Reliable.Receiver.listen b ~port:7100
      ~on_message:(fun m -> got2 := Payload.to_string m :: !got2)
      ()
  in
  let tx1 =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
  in
  let tx2 =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7100
      ~src_port:7101 ()
  in
  (* interleave the sends *)
  for i = 1 to 30 do
    Netsim.Reliable.Sender.send tx1 (Payload.of_string (Printf.sprintf "s1-%d" i));
    Netsim.Reliable.Sender.send tx2 (Payload.of_string (Printf.sprintf "s2-%d" i))
  done;
  Topology.run topo;
  Alcotest.(check (list string))
    "stream 1 in order, nothing from stream 2"
    (List.init 30 (fun i -> Printf.sprintf "s1-%d" (i + 1)))
    (List.rev !got1);
  Alcotest.(check (list string))
    "stream 2 in order, nothing from stream 1"
    (List.init 30 (fun i -> Printf.sprintf "s2-%d" (i + 1)))
    (List.rev !got2);
  check "stream 1 exactly once" 30 (Netsim.Reliable.Receiver.delivered rx1);
  check "stream 2 exactly once" 30 (Netsim.Reliable.Receiver.delivered rx2);
  check "clean link: no retransmissions on either stream" 0
    (Netsim.Reliable.Sender.retransmissions tx1
    + Netsim.Reliable.Sender.retransmissions tx2)

let reliable_two_senders_one_port () =
  (* Two senders converge on ONE receiver port, the shape of two
     controllers addressing the same deploy daemon. The receiver must
     demultiplex by (source address, source port): the second sender's
     stream also starts at seq 0, and before per-peer sequence spaces its
     messages were counted as duplicates of the first stream's progress,
     cumulatively acked, and never delivered. *)
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let c = Topology.add_host topo "c" "10.0.0.2" in
  let b = Topology.add_host topo "b" "10.0.0.3" in
  ignore (Topology.connect topo a b);
  ignore (Topology.connect topo c b);
  Topology.compute_routes topo;
  let got = ref [] in
  let rx =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun m -> got := Payload.to_string m :: !got)
      ()
  in
  let tx1 =
    Netsim.Reliable.Sender.connect a ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
  in
  (* The first stream makes progress before the second even connects. *)
  for i = 1 to 20 do
    Netsim.Reliable.Sender.send tx1 (Payload.of_string (Printf.sprintf "s1-%d" i))
  done;
  Topology.run topo;
  let tx2 =
    Netsim.Reliable.Sender.connect c ~dst:(Node.addr b) ~dst_port:7000
      ~src_port:7001 ()
    (* same source port as tx1 on purpose: only the address differs *)
  in
  for i = 1 to 20 do
    Netsim.Reliable.Sender.send tx2 (Payload.of_string (Printf.sprintf "s2-%d" i))
  done;
  Topology.run topo;
  let s2 = List.filter (fun m -> String.length m > 1 && m.[1] = '2') !got in
  Alcotest.(check (list string))
    "late stream delivered in order, exactly once"
    (List.init 20 (fun i -> Printf.sprintf "s2-%d" (i + 1)))
    (List.rev s2);
  check "both streams delivered in full" 40
    (Netsim.Reliable.Receiver.delivered rx);
  check "clean links: nothing misread as a duplicate" 0
    (Netsim.Reliable.Receiver.duplicates rx)

let reliable_flap_mid_window () =
  (* The link goes down while a window is partially acknowledged and comes
     back: delivery must stay exactly-once and in-order, and the
     retransmissions must stay bounded (go-back-N resends at most one
     window per RTO while the link is dark). *)
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  let link = Topology.connect topo a b in
  Topology.compute_routes topo;
  let got = ref [] in
  let rx =
    Netsim.Reliable.Receiver.listen b ~port:7000
      ~on_message:(fun m -> got := Payload.to_string m :: !got)
      ()
  in
  let window = 8 and rto = 0.2 in
  let tx =
    Netsim.Reliable.Sender.connect ~window ~rto a ~dst:(Node.addr b)
      ~dst_port:7000 ~src_port:7001 ()
  in
  let engine = Topology.engine topo in
  let n = 24 in
  Engine.schedule engine ~at:0.0 (fun () ->
      for i = 1 to n do
        Netsim.Reliable.Sender.send tx (Payload.of_string (string_of_int i))
      done);
  (* first messages of the window get through and are acked; then dark *)
  let outage = 2.0 in
  Engine.schedule engine ~at:0.0035 (fun () -> Netsim.Link.set_up link false);
  Engine.schedule engine ~at:(0.0035 +. outage) (fun () ->
      Netsim.Link.set_up link true);
  Topology.run_until topo ~stop:30.0;
  Alcotest.(check (list string))
    "in order, exactly once"
    (List.init n (fun i -> string_of_int (i + 1)))
    (List.rev !got);
  check "exactly once" n (Netsim.Reliable.Receiver.delivered rx);
  check "all acked" (n - 1) (Netsim.Reliable.Sender.acked tx);
  let retx = Netsim.Reliable.Sender.retransmissions tx in
  checkb "outage forced retransmissions" true (retx > 0);
  (* bound: one window per RTO while dark, plus slack for recovery *)
  let bound =
    (int_of_float (outage /. rto) + 2) * window
  in
  checkb
    (Printf.sprintf "retransmissions bounded (%d <= %d)" retx bound)
    true (retx <= bound)

let topology_rejects_duplicates () =
  let topo = Topology.create () in
  ignore (Topology.add_host topo "a" "10.0.0.1");
  Alcotest.check_raises "dup name"
    (Invalid_argument "Topology.add_node: duplicate name a") (fun () ->
      ignore (Topology.add_host topo "a" "10.0.0.2"));
  Alcotest.check_raises "dup addr"
    (Invalid_argument "Topology.add_node: duplicate address 10.0.0.1")
    (fun () -> ignore (Topology.add_host topo "b" "10.0.0.1"))

let () =
  Alcotest.run "netsim"
    [
      ( "heap",
        [
          Alcotest.test_case "orders by time" `Quick heap_orders_by_time;
          Alcotest.test_case "fifo on ties" `Quick heap_fifo_on_ties;
          Alcotest.test_case "grows" `Quick heap_grows;
          Alcotest.test_case "peek" `Quick heap_peek;
        ] );
      ( "sched",
        [
          Alcotest.test_case "orders by time" `Quick sched_orders_by_time;
          Alcotest.test_case "fifo on ties" `Quick sched_fifo_on_ties;
          Alcotest.test_case "stamped seq keeps position" `Quick
            sched_stamped_keeps_position;
          Alcotest.test_case "grows and clears" `Quick sched_grows_and_clears;
          Alcotest.test_case "peek" `Quick sched_peek;
          Alcotest.test_case "overflow and rotation" `Quick
            sched_overflow_and_rotation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick engine_runs_in_order;
          Alcotest.test_case "run_until" `Quick engine_run_until;
          Alcotest.test_case "rejects past" `Quick engine_rejects_past;
          Alcotest.test_case "delivery ring" `Quick engine_delivery_ring;
          Alcotest.test_case "nested scheduling" `Quick engine_nested_scheduling;
        ] );
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick addr_roundtrip;
          Alcotest.test_case "rejects bad" `Quick addr_rejects_bad;
          Alcotest.test_case "multicast range" `Quick addr_multicast_range;
          Alcotest.test_case "subnets" `Quick addr_subnets;
        ] );
      ( "payload",
        [
          Alcotest.test_case "accessors" `Quick payload_accessors;
          Alcotest.test_case "writer/reader" `Quick payload_writer_reader;
          Alcotest.test_case "sub/concat/fill" `Quick payload_sub_concat;
          Alcotest.test_case "slice of slice" `Quick payload_slice_of_slice;
          Alcotest.test_case "equal/pp across representations" `Quick
            payload_equal_pp_parity;
          Alcotest.test_case "reader parity" `Quick payload_reader_parity;
          Alcotest.test_case "writer raw over ropes" `Quick
            payload_writer_raw_rope;
        ] );
      ( "packet",
        [
          Alcotest.test_case "wire size" `Quick packet_wire_size;
          Alcotest.test_case "ttl" `Quick packet_ttl;
          Alcotest.test_case "rewrite keeps uid" `Quick packet_rewrite_keeps_uid;
        ] );
      ( "flowstat",
        [
          Alcotest.test_case "window" `Quick flowstat_window;
          Alcotest.test_case "series" `Quick flowstat_series;
        ] );
      ( "link",
        [
          Alcotest.test_case "timing" `Quick link_timing;
          Alcotest.test_case "queue drop" `Quick link_queue_drop;
          Alcotest.test_case "full duplex" `Quick link_full_duplex;
          Alcotest.test_case "burst fifo" `Quick link_burst_fifo;
          Alcotest.test_case "metrics flush" `Quick link_metrics_flush;
        ] );
      ( "segment",
        [
          Alcotest.test_case "broadcasts" `Quick segment_broadcasts;
          Alcotest.test_case "tap sees carried only" `Quick
            segment_tap_sees_carried_only;
        ] );
      ( "node",
        [
          Alcotest.test_case "delivers by port" `Quick node_delivers_by_port;
          Alcotest.test_case "default handler" `Quick node_default_handler;
          Alcotest.test_case "forwarding chain" `Quick forwarding_chain;
          Alcotest.test_case "ttl expiry" `Quick ttl_expiry_drops;
          Alcotest.test_case "l2 filter + promiscuous" `Quick
            segment_l2_filter_and_promisc;
          Alcotest.test_case "multicast via router" `Quick
            multicast_delivery_through_router;
          Alcotest.test_case "cpu cost serializes" `Quick cpu_cost_serializes;
        ] );
      ( "routing",
        [
          Alcotest.test_case "default route" `Quick routing_default_route;
          Alcotest.test_case "multicast registry" `Quick multicast_registry;
          Alcotest.test_case "topology rejects duplicates" `Quick
            topology_rejects_duplicates;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "captures segment" `Quick tracer_captures_segment;
          Alcotest.test_case "caps records" `Quick tracer_caps_records;
        ] );
      ( "faults",
        [ Alcotest.test_case "link failure and recovery" `Quick
            link_failure_and_recovery ] );
      ( "summary",
        [
          Alcotest.test_case "statistics" `Quick summary_statistics;
          Alcotest.test_case "merge" `Quick summary_merge;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "in-order delivery" `Quick reliable_in_order_delivery;
          Alcotest.test_case "survives outage" `Quick reliable_survives_outage;
          Alcotest.test_case "dedups on lost acks" `Quick reliable_dedups;
          Alcotest.test_case "concurrent streams share a link" `Quick
            reliable_concurrent_streams;
          Alcotest.test_case "two senders, one port" `Quick
            reliable_two_senders_one_port;
          Alcotest.test_case "flap mid-window" `Quick reliable_flap_mid_window;
        ] );
    ]
