(* Unit tests for the PLAN-P runtime: values, the packet codec, the
   primitive library, audio frames, the interpreter and the per-node
   runtime. *)

module Value = Planp_runtime.Value
module World = Planp_runtime.World
module Prim = Planp_runtime.Prim
module Prims = Planp_runtime.Prims
module Pkt_codec = Planp_runtime.Pkt_codec
module Audio_frame = Planp_runtime.Audio_frame
module Interp = Planp_runtime.Interp
module Runtime = Planp_runtime.Runtime
module Ptype = Planp.Ptype
module Packet = Netsim.Packet
module Payload = Netsim.Payload

let () = Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let addr = Netsim.Addr.of_string

(* ---------- values ---------- *)

let value_equal () =
  checkb "ints" true (Value.equal (Value.Vint 3) (Value.Vint 3));
  checkb "tuples" true
    (Value.equal
       (Value.Vtuple [| Value.Vint 1; Value.Vstring "a" |])
       (Value.Vtuple [| Value.Vint 1; Value.Vstring "a" |]));
  checkb "different constructors" false
    (Value.equal (Value.Vint 1) (Value.Vbool true));
  let t1 = Hashtbl.create 1 and t2 = Hashtbl.create 1 in
  checkb "tables by identity" false (Value.equal (Value.Vtable t1) (Value.Vtable t2));
  checkb "same table" true (Value.equal (Value.Vtable t1) (Value.Vtable t1))

let value_defaults () =
  checkb "int" true (Value.equal (Value.default_of Ptype.Tint) (Value.Vint 0));
  checkb "tuple" true
    (Value.equal
       (Value.default_of (Ptype.Ttuple [ Ptype.Thost; Ptype.Tint ]))
       (Value.Vtuple [| Value.Vhost 0; Value.Vint 0 |]));
  Alcotest.check_raises "no blob default"
    (Value.Runtime_error "no default value for type blob") (fun () ->
      ignore (Value.default_of Ptype.Tblob))

let value_projections () =
  check "as_int" 5 (Value.as_int (Value.Vint 5));
  Alcotest.check_raises "wrong shape"
    (Value.Runtime_error "expected int, got true") (fun () ->
      ignore (Value.as_int (Value.Vbool true)))

(* ---------- packet codec ---------- *)

let tcp_packet body =
  Packet.tcp ~src:(addr "1.1.1.1") ~dst:(addr "2.2.2.2") ~src_port:1111
    ~dst_port:80 body

let codec_blob_roundtrip () =
  let ty = Ptype.Ttuple [ Ptype.Tip; Ptype.Ttcp; Ptype.Tblob ] in
  let packet = tcp_packet (Payload.of_string "hello") in
  match Pkt_codec.decode ty packet with
  | Some (Value.Vtuple [| Value.Vip ip; Value.Vtcp tcp; Value.Vblob body |]) ->
      check "src" (addr "1.1.1.1") ip.Value.vsrc;
      check "dst port" 80 tcp.Packet.tcp_dst;
      checks "body" "hello" (Payload.to_string body);
      let rebuilt =
        Pkt_codec.encode ~chan:"network"
          (Value.Vtuple [| Value.Vip ip; Value.Vtcp tcp; Value.Vblob body |])
      in
      checkb "untagged" true (rebuilt.Packet.chan_tag = None);
      checks "body preserved" "hello" (Payload.to_string rebuilt.Packet.body)
  | _ -> Alcotest.fail "decode failed"

let codec_scalar_layout () =
  let ty =
    Ptype.Ttuple [ Ptype.Tip; Ptype.Ttcp; Ptype.Tchar; Ptype.Tint; Ptype.Tbool ]
  in
  let w = Payload.Writer.create () in
  Payload.Writer.u8 w (Char.code 'X');
  Payload.Writer.u32 w 99;
  Payload.Writer.u8 w 1;
  let packet = tcp_packet (Payload.Writer.finish w) in
  match Pkt_codec.decode ty packet with
  | Some
      (Value.Vtuple [| _; _; Value.Vchar 'X'; Value.Vint 99; Value.Vbool true |])
    ->
      ()
  | _ -> Alcotest.fail "scalar layout decode"

let codec_exact_length_disambiguates () =
  (* The Fig. 4 overload mechanism: a 5-byte body matches char*int, not
     char*bool. *)
  let ci = Ptype.Ttuple [ Ptype.Tip; Ptype.Ttcp; Ptype.Tchar; Ptype.Tint ] in
  let cb = Ptype.Ttuple [ Ptype.Tip; Ptype.Ttcp; Ptype.Tchar; Ptype.Tbool ] in
  let w = Payload.Writer.create () in
  Payload.Writer.u8 w (Char.code 'A');
  Payload.Writer.u32 w 7;
  let five = tcp_packet (Payload.Writer.finish w) in
  checkb "matches char*int" true (Pkt_codec.matches ci five);
  checkb "not char*bool" false (Pkt_codec.matches cb five);
  let w = Payload.Writer.create () in
  Payload.Writer.u8 w (Char.code 'B');
  Payload.Writer.u8 w 0;
  let two = tcp_packet (Payload.Writer.finish w) in
  checkb "two matches char*bool" true (Pkt_codec.matches cb two);
  checkb "two not char*int" false (Pkt_codec.matches ci two)

let codec_transport_mismatch () =
  let udp_ty = Ptype.Ttuple [ Ptype.Tip; Ptype.Tudp; Ptype.Tblob ] in
  checkb "tcp packet vs udp type" false
    (Pkt_codec.matches udp_ty (tcp_packet Payload.empty));
  let any_ty = Ptype.Ttuple [ Ptype.Tip; Ptype.Tblob ] in
  checkb "ip*blob matches any transport" true
    (Pkt_codec.matches any_ty (tcp_packet Payload.empty))

let codec_string_component () =
  let ty = Ptype.Ttuple [ Ptype.Tip; Ptype.Tudp; Ptype.Tstring; Ptype.Tint ] in
  let w = Payload.Writer.create () in
  Payload.Writer.u16 w 3;
  Payload.Writer.string w "abc";
  Payload.Writer.u32 w 5;
  let packet =
    Packet.udp ~src:(addr "1.1.1.1") ~dst:(addr "2.2.2.2") ~src_port:1
      ~dst_port:2 (Payload.Writer.finish w)
  in
  match Pkt_codec.decode ty packet with
  | Some (Value.Vtuple [| _; _; Value.Vstring "abc"; Value.Vint 5 |]) -> ()
  | _ -> Alcotest.fail "string component"

let codec_negative_int () =
  let ty = Ptype.Ttuple [ Ptype.Tip; Ptype.Tudp; Ptype.Tint ] in
  let value =
    Value.Vtuple
      [| Value.Vip { Value.vsrc = addr "1.1.1.1"; vdst = addr "2.2.2.2"; vttl = 9 };
         Value.Vudp { Packet.udp_src = 1; udp_dst = 2 };
         Value.Vint (-42) |]
  in
  let packet = Pkt_codec.encode ~chan:"network" value in
  check "ttl preserved" 9 packet.Packet.ttl;
  match Pkt_codec.decode ty packet with
  | Some (Value.Vtuple [| _; _; Value.Vint n |]) -> check "sign extended" (-42) n
  | _ -> Alcotest.fail "negative int roundtrip"

let codec_tag () =
  let value =
    Value.Vtuple
      [| Value.Vip { Value.vsrc = 1; vdst = 2; vttl = 64 };
         Value.Vudp { Packet.udp_src = 1; udp_dst = 2 };
         Value.Vblob Payload.empty |]
  in
  let tagged = Pkt_codec.encode ~chan:"mychan" value in
  Alcotest.(check (option string)) "tagged" (Some "mychan") tagged.Packet.chan_tag

(* ---------- primitives ---------- *)

let dummy_eval name args =
  let world, _, _ = World.dummy () in
  (Prim.find_exn name).Prim.impl world (Array.of_list args)

let prims_core () =
  checks "itos" "42" (Value.as_string (dummy_eval "itos" [ Value.Vint 42 ]));
  checks "htos" "10.0.0.1"
    (Value.as_string (dummy_eval "htos" [ Value.Vhost (addr "10.0.0.1") ]));
  check "charPos" 80 (Value.as_int (dummy_eval "charPos" [ Value.Vchar 'P' ]));
  check "strlen" 5 (Value.as_int (dummy_eval "strlen" [ Value.Vstring "hello" ]));
  checks "substr" "ell"
    (Value.as_string
       (dummy_eval "substr" [ Value.Vstring "hello"; Value.Vint 1; Value.Vint 3 ]));
  check "strFind hit" 2
    (Value.as_int (dummy_eval "strFind" [ Value.Vstring "hello"; Value.Vstring "llo" ]));
  check "strFind miss" (-1)
    (Value.as_int (dummy_eval "strFind" [ Value.Vstring "hello"; Value.Vstring "x" ]));
  check "min" 1 (Value.as_int (dummy_eval "min" [ Value.Vint 1; Value.Vint 2 ]));
  checkb "even" true (Value.as_bool (dummy_eval "even" [ Value.Vint 4 ]))

let prims_core_errors () =
  Alcotest.check_raises "substr oob" (Value.Planp_raise "OutOfBounds") (fun () ->
      ignore
        (dummy_eval "substr" [ Value.Vstring "ab"; Value.Vint 1; Value.Vint 5 ]));
  Alcotest.check_raises "chr range" (Value.Planp_raise "BadChar") (fun () ->
      ignore (dummy_eval "chr" [ Value.Vint 300 ]))

let prims_blob () =
  let blob = Value.Vblob (Payload.of_string "\x01\x02\x03\x04\x05") in
  check "blobLength" 5 (Value.as_int (dummy_eval "blobLength" [ blob ]));
  check "blobByte" 3 (Value.as_int (dummy_eval "blobByte" [ blob; Value.Vint 2 ]));
  check "blobU32" 0x01020304 (Value.as_int (dummy_eval "blobU32" [ blob; Value.Vint 0 ]));
  let sub = dummy_eval "blobSub" [ blob; Value.Vint 1; Value.Vint 2 ] in
  check "blobSub len" 2 (Payload.length (Value.as_blob sub));
  let cat = dummy_eval "blobConcat" [ sub; sub ] in
  check "blobConcat" 4 (Payload.length (Value.as_blob cat))

let prims_net () =
  let ip = Value.Vip { Value.vsrc = addr "1.1.1.1"; vdst = addr "2.2.2.2"; vttl = 64 } in
  check "ipSrc" (addr "1.1.1.1") (Value.as_host (dummy_eval "ipSrc" [ ip ]));
  let rewritten = dummy_eval "ipDestSet" [ ip; Value.Vhost (addr "9.9.9.9") ] in
  check "ipDestSet" (addr "9.9.9.9") (Value.as_ip rewritten).Value.vdst;
  check "src unchanged" (addr "1.1.1.1") (Value.as_ip rewritten).Value.vsrc;
  let tcp =
    Value.Vtcp
      { Packet.tcp_src = 10; tcp_dst = 80; tcp_seq = 0; tcp_ack = 0;
        tcp_syn = false; tcp_fin = false; tcp_is_ack = false }
  in
  check "tcpDst" 80 (Value.as_int (dummy_eval "tcpDst" [ tcp ]));
  let retargeted = dummy_eval "tcpDstSet" [ tcp; Value.Vint 8080 ] in
  check "tcpDstSet" 8080 (Value.as_tcp retargeted).Packet.tcp_dst;
  checkb "isMulticast" true
    (Value.as_bool (dummy_eval "isMulticast" [ Value.Vhost (addr "224.0.0.1") ]))

let prims_table () =
  let table = dummy_eval "mkTable" [ Value.Vint 8 ] in
  let key = Value.Vtuple [| Value.Vhost 1; Value.Vint 2 |] in
  checkb "miss" false (Value.as_bool (dummy_eval "tblMem" [ table; key ]));
  check "default" 7
    (Value.as_int (dummy_eval "tblGet" [ table; key; Value.Vint 7 ]));
  ignore (dummy_eval "tblSet" [ table; key; Value.Vint 1 ]);
  checkb "hit" true (Value.as_bool (dummy_eval "tblMem" [ table; key ]));
  check "get" 1 (Value.as_int (dummy_eval "tblGet" [ table; key; Value.Vint 7 ]));
  check "size" 1 (Value.as_int (dummy_eval "tblSize" [ table ]));
  ignore (dummy_eval "tblRemove" [ table; key ]);
  check "removed" 0 (Value.as_int (dummy_eval "tblSize" [ table ]))

(* ---------- audio frames ---------- *)

let audio_roundtrip () =
  let frame = Audio_frame.synth ~seq:3 ~frames:100 ~phase:0 in
  let decoded = Option.get (Audio_frame.decode (Audio_frame.encode frame)) in
  checkb "roundtrip" true (Audio_frame.equal frame decoded);
  check "frame count" 100 (Audio_frame.frame_count decoded)

let audio_sizes () =
  let frame = Audio_frame.synth ~seq:0 ~frames:882 ~phase:0 in
  check "stereo16 wire" (7 + (882 * 4)) (Payload.length (Audio_frame.encode frame));
  let m16 = Audio_frame.degrade frame Audio_frame.Mono16 in
  check "mono16 wire" (7 + (882 * 2)) (Payload.length (Audio_frame.encode m16));
  let m8 = Audio_frame.degrade frame Audio_frame.Mono8 in
  check "mono8 wire" (7 + 882) (Payload.length (Audio_frame.encode m8))

let audio_degrade_monotone () =
  let frame = Audio_frame.synth ~seq:0 ~frames:500 ~phase:17 in
  let m16 = Audio_frame.degrade frame Audio_frame.Mono16 in
  let m8 = Audio_frame.degrade frame Audio_frame.Mono8 in
  let e16 = Audio_frame.rms_error frame m16 in
  let e8 = Audio_frame.rms_error frame m8 in
  checkb "mono16 loses something" true (e16 > 0.0);
  checkb "mono8 loses more" true (e8 > e16);
  checkb "no upgrade" true
    (Audio_frame.equal m8 (Audio_frame.degrade m8 Audio_frame.Stereo16))

let audio_restore_format () =
  let frame = Audio_frame.synth ~seq:0 ~frames:50 ~phase:3 in
  let restored =
    Audio_frame.restore (Audio_frame.degrade frame Audio_frame.Mono8)
  in
  checkb "stereo16 format" true (restored.Audio_frame.quality = Audio_frame.Stereo16);
  check "same frame count" 50 (Audio_frame.frame_count restored)

let audio_prims () =
  let frame = Audio_frame.synth ~seq:9 ~frames:40 ~phase:0 in
  let blob = Value.Vblob (Audio_frame.encode frame) in
  check "audioSeq" 9 (Value.as_int (dummy_eval "audioSeq" [ blob ]));
  check "audioQuality" 0 (Value.as_int (dummy_eval "audioQuality" [ blob ]));
  check "audioFrames" 40 (Value.as_int (dummy_eval "audioFrames" [ blob ]));
  let degraded = dummy_eval "audioDegrade" [ blob; Value.Vint 2 ] in
  check "degraded quality" 2
    (Value.as_int (dummy_eval "audioQuality" [ degraded ]));
  Alcotest.check_raises "bad audio" (Value.Planp_raise "BadAudio") (fun () ->
      ignore (dummy_eval "audioSeq" [ Value.Vblob (Payload.of_string "junk") ]))

(* ---------- interpreter ---------- *)

let eval_str ?(globals = []) source =
  let world, _, _ = World.dummy () in
  Interp.eval_const ~world ~globals (Planp.Parser.parse_expr source)

let interp_arith () =
  check "precedence" 7 (Value.as_int (eval_str "1 + 2 * 3"));
  check "mod" 2 (Value.as_int (eval_str "17 mod 5"));
  check "neg" (-4) (Value.as_int (eval_str "-(2 + 2)"));
  checks "concat" "ab" (Value.as_string (eval_str "\"a\" ^ \"b\""))

let interp_short_circuit () =
  checkb "andalso" false (Value.as_bool (eval_str "false andalso 1 / 0 = 1"));
  checkb "orelse" true (Value.as_bool (eval_str "true orelse 1 / 0 = 1"))

let interp_let_scoping () =
  check "sequential bindings" 3
    (Value.as_int (eval_str "let val x : int = 1 val y : int = x + 2 in y end"));
  check "shadowing" 10
    (Value.as_int (eval_str "let val x : int = 1 val x : int = 10 in x end"))

let interp_exceptions () =
  Alcotest.check_raises "div by zero" (Value.Planp_raise "DivByZero") (fun () ->
      ignore (eval_str "1 / 0"));
  check "handled" 5
    (Value.as_int (eval_str "try 1 / 0 handle DivByZero => 5 end"));
  check "inner handler wins" 1
    (Value.as_int
       (eval_str
          "try (try 1 / 0 handle DivByZero => 1 end) handle DivByZero => 2 end"));
  Alcotest.check_raises "unmatched handler" (Value.Planp_raise "DivByZero")
    (fun () -> ignore (eval_str "try 1 / 0 handle OutOfBounds => 5 end"))

let interp_emissions () =
  let world, prints, emissions = World.dummy () in
  let source =
    "channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     (print(\"saw \" ^ itos(ps)); OnRemote(network, p); (ps + 1, ss))"
  in
  let checked =
    Planp.Typecheck.check_exn ~prims:Prim.type_lookup (Planp.Parser.parse source)
  in
  let compiled = Interp.backend.Planp_runtime.Backend.compile checked ~globals:[] in
  let _, exec = List.hd compiled in
  let pkt =
    Option.get
      (Pkt_codec.decode
         (Ptype.Ttuple [ Ptype.Tip; Ptype.Tudp; Ptype.Tblob ])
         (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty))
  in
  let ps', _ = exec world ~ps:(Value.Vint 0) ~ss:(Value.Vint 0) ~pkt in
  check "state advanced" 1 (Value.as_int ps');
  check "one emission" 1 (List.length (emissions ()));
  Alcotest.(check (list string)) "print" [ "saw 0" ] (prints ())

(* ---------- runtime ---------- *)

let loopback_runtime () =
  let engine = Netsim.Engine.create () in
  let node = Netsim.Node.create engine ~name:"n" ~addr:(addr "10.0.0.1") in
  ignore (Netsim.Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
  Runtime.attach node

let runtime_dispatch_and_state () =
  let rt = loopback_runtime () in
  let program =
    Runtime.install_exn rt
      ~source:
        "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss + 10))"
      ()
  in
  let packet () = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty in
  Runtime.inject rt (packet ());
  Runtime.inject rt (packet ());
  checkb "proto threaded" true
    (Value.equal (Value.Vint 2) (Runtime.proto_state program));
  (match Runtime.channel_state program "network" 0 with
  | Some state -> checkb "channel state" true (Value.equal (Value.Vint 20) state)
  | None -> Alcotest.fail "channel state missing");
  check "handled" 2 (Runtime.stats rt).Runtime.handled

let runtime_overload_dispatch () =
  (* Fig. 4: two network channels over TCP with differently-typed bodies. *)
  let rt = loopback_runtime () in
  ignore
    (Runtime.install_exn rt
       ~source:
         "channel network(ps : int, ss : int, p : ip*tcp*char*int) is\n\
          (print(\"CmdA:\" ^ itos(#4 p)); deliver(p); (ps, ss))\n\
          channel network(ps : int, ss : int, p : ip*tcp*char*bool) is\n\
          (print(\"CmdB\"); deliver(p); (ps, ss))"
       ());
  let send bytes =
    let w = Payload.Writer.create () in
    List.iter (fun b -> Payload.Writer.u8 w b) bytes;
    Runtime.inject rt
      (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.Writer.finish w))
  in
  send [ Char.code 'A'; 0; 0; 0; 42 ];
  send [ Char.code 'B'; 1 ];
  checks "routing by payload shape" "CmdA:42CmdB" (Runtime.output rt)

let runtime_tagged_channels () =
  let rt = loopback_runtime () in
  ignore
    (Runtime.install_exn rt
       ~source:
         "channel ctl(ps : int, ss : int, p : ip*udp*int) is (deliver(p); (ps + #3 p, ss))\n\
          channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))"
       ());
  let w = Payload.Writer.create () in
  Payload.Writer.u32 w 5;
  Runtime.inject rt
    (Packet.udp ~chan_tag:"ctl" ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
       (Payload.Writer.finish w));
  (* untagged 4-byte packet must go to network, not ctl *)
  let w = Payload.Writer.create () in
  Payload.Writer.u32 w 9;
  Runtime.inject rt
    (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.Writer.finish w));
  let program = List.hd (Runtime.installed_programs rt) in
  checkb "only tagged packet hit ctl" true
    (Value.equal (Value.Vint 5) (Runtime.proto_state program))

let runtime_fallthrough_and_errors () =
  let rt = loopback_runtime () in
  ignore
    (Runtime.install_exn rt
       ~source:
         "exception Boom\n\
          channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
          (deliver(p); if tcpDst(#2 p) = 666 then raise Boom else (ps, ss))"
       ());
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty);
  check "fallthrough" 1 (Runtime.stats rt).Runtime.fallthrough;
  Runtime.inject rt (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:666 Payload.empty);
  check "errors" 1 (Runtime.stats rt).Runtime.errors

let runtime_install_errors () =
  let rt = loopback_runtime () in
  (match Runtime.install rt ~source:"val x : int = " () with
  | Error (Runtime.Parse_error _) -> ()
  | _ -> Alcotest.fail "parse error expected");
  (match Runtime.install rt ~source:"val x : int = true" () with
  | Error (Runtime.Type_error _) -> ()
  | _ -> Alcotest.fail "type error expected");
  match
    Runtime.install rt ~pre:(fun _ -> Error "nope") ~source:"val x : int = 1" ()
  with
  | Error (Runtime.Rejected "nope") -> ()
  | _ -> Alcotest.fail "rejection expected"

let runtime_uninstall () =
  let rt = loopback_runtime () in
  let program =
    Runtime.install_exn rt
      ~source:
        "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"
      ()
  in
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty);
  Runtime.uninstall rt program;
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty);
  check "second packet fell through" 1 (Runtime.stats rt).Runtime.fallthrough;
  check "no programs left" 0 (List.length (Runtime.installed_programs rt))

let runtime_multiple_programs () =
  (* Two programs on one node: consulted in installation order, each
     treating the packets its channels match. *)
  let rt = loopback_runtime () in
  let limiter =
    Runtime.install_exn rt ~name:"udp-counter"
      ~source:
        "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + 1, ss))"
      ()
  in
  let redirect =
    Runtime.install_exn rt ~name:"tcp-counter"
      ~source:
        "channel network(ps : int, ss : int, p : ip*tcp*blob) is (deliver(p); (ps + 1, ss))"
      ()
  in
  check "two programs installed" 2 (List.length (Runtime.installed_programs rt));
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:9 Payload.empty);
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:9 Payload.empty);
  Runtime.inject rt (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:80 Payload.empty);
  checkb "udp program counted 2" true
    (Value.equal (Value.Vint 2) (Runtime.proto_state limiter));
  checkb "tcp program counted 1" true
    (Value.equal (Value.Vint 1) (Runtime.proto_state redirect));
  check "all handled" 3 (Runtime.stats rt).Runtime.handled

let runtime_reinstall_ordering () =
  (* Programs are consulted in installation order, and [install] always
     appends — so reinstalling a same-named program moves it to the END of
     the dispatch order.  Two programs whose channels both match UDP make
     the order observable: whichever is consulted first treats the packet. *)
  let rt = loopback_runtime () in
  let counter name =
    Printf.sprintf
      "channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps + %s, ss))"
      name
  in
  let packet () =
    Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:9 Payload.empty
  in
  let first = Runtime.install_exn rt ~name:"first" ~source:(counter "1") () in
  let second = Runtime.install_exn rt ~name:"second" ~source:(counter "1") () in
  Runtime.inject rt (packet ());
  checkb "first-installed program shadows the second" true
    (Value.equal (Value.Vint 1) (Runtime.proto_state first));
  checkb "second saw nothing" true
    (Value.equal (Value.Vint 0) (Runtime.proto_state second));
  (* Reinstall "first" the way the deploy daemon hot-swaps: install the
     replacement, then uninstall the old instance. *)
  let first' = Runtime.install_exn rt ~name:"first" ~source:(counter "1") () in
  Runtime.uninstall rt first;
  check "still two programs" 2 (List.length (Runtime.installed_programs rt));
  checkb "reinstalled program now sits at the end" true
    (match Runtime.installed_programs rt with
    | [ a; b ] ->
        Runtime.program_name a = "second" && Runtime.program_name b = "first"
        && b == first'
    | _ -> false);
  Runtime.inject rt (packet ());
  checkb "second now consulted first" true
    (Value.equal (Value.Vint 1) (Runtime.proto_state second));
  checkb "reinstalled first is shadowed" true
    (Value.equal (Value.Vint 0) (Runtime.proto_state first'));
  check "every packet handled" 2 (Runtime.stats rt).Runtime.handled

let runtime_channel_hits () =
  let rt = loopback_runtime () in
  let program =
    Runtime.install_exn rt
      ~source:
        "channel network(ps : int, ss : int, p : ip*tcp*char*int) is (deliver(p); (ps, ss))\n\
         channel network(ps : int, ss : int, p : ip*tcp*char*bool) is (deliver(p); (ps, ss))"
      ()
  in
  let send bytes =
    let w = Payload.Writer.create () in
    List.iter (Payload.Writer.u8 w) bytes;
    Runtime.inject rt
      (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.Writer.finish w))
  in
  send [ 65; 0; 0; 0; 1 ];
  send [ 65; 0; 0; 0; 2 ];
  send [ 66; 1 ];
  match Runtime.channel_hits program with
  | [ (_, _, first); (_, _, second) ] ->
      check "char*int overload" 2 first;
      check "char*bool overload" 1 second
  | _ -> Alcotest.fail "two overloads expected"

let runtime_globals_evaluated_once () =
  let rt = loopback_runtime () in
  let program =
    Runtime.install_exn rt
      ~source:
        "val limit : int = 2 + 3\n\
         channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
         (deliver(p); (ps + limit, ss))"
      ()
  in
  Runtime.inject rt (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 Payload.empty);
  checkb "global used" true (Value.equal (Value.Vint 5) (Runtime.proto_state program))

let () =
  Alcotest.run "planp-runtime"
    [
      ( "value",
        [
          Alcotest.test_case "equal" `Quick value_equal;
          Alcotest.test_case "defaults" `Quick value_defaults;
          Alcotest.test_case "projections" `Quick value_projections;
        ] );
      ( "codec",
        [
          Alcotest.test_case "blob roundtrip" `Quick codec_blob_roundtrip;
          Alcotest.test_case "scalar layout" `Quick codec_scalar_layout;
          Alcotest.test_case "exact length disambiguates" `Quick
            codec_exact_length_disambiguates;
          Alcotest.test_case "transport mismatch" `Quick codec_transport_mismatch;
          Alcotest.test_case "string component" `Quick codec_string_component;
          Alcotest.test_case "negative int" `Quick codec_negative_int;
          Alcotest.test_case "channel tag" `Quick codec_tag;
        ] );
      ( "prims",
        [
          Alcotest.test_case "core" `Quick prims_core;
          Alcotest.test_case "core errors" `Quick prims_core_errors;
          Alcotest.test_case "blob" `Quick prims_blob;
          Alcotest.test_case "net" `Quick prims_net;
          Alcotest.test_case "table" `Quick prims_table;
        ] );
      ( "audio",
        [
          Alcotest.test_case "roundtrip" `Quick audio_roundtrip;
          Alcotest.test_case "sizes" `Quick audio_sizes;
          Alcotest.test_case "degrade monotone" `Quick audio_degrade_monotone;
          Alcotest.test_case "restore format" `Quick audio_restore_format;
          Alcotest.test_case "primitives" `Quick audio_prims;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arith" `Quick interp_arith;
          Alcotest.test_case "short circuit" `Quick interp_short_circuit;
          Alcotest.test_case "let scoping" `Quick interp_let_scoping;
          Alcotest.test_case "exceptions" `Quick interp_exceptions;
          Alcotest.test_case "emissions" `Quick interp_emissions;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "dispatch and state" `Quick runtime_dispatch_and_state;
          Alcotest.test_case "overload dispatch" `Quick runtime_overload_dispatch;
          Alcotest.test_case "tagged channels" `Quick runtime_tagged_channels;
          Alcotest.test_case "fallthrough and errors" `Quick
            runtime_fallthrough_and_errors;
          Alcotest.test_case "install errors" `Quick runtime_install_errors;
          Alcotest.test_case "uninstall" `Quick runtime_uninstall;
          Alcotest.test_case "globals once" `Quick runtime_globals_evaluated_once;
          Alcotest.test_case "channel hits" `Quick runtime_channel_hits;
          Alcotest.test_case "multiple programs" `Quick runtime_multiple_programs;
          Alcotest.test_case "reinstall ordering" `Quick
            runtime_reinstall_ordering;
        ] );
    ]
