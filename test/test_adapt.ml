(* The closed-loop adaptation plane: EWMA signals, the condition monitor,
   the policy grammar, the plane's hold/hysteresis/guard semantics against
   a real deploy daemon, and the experiment wirings — empty-policy golden
   parity and adaptive-beats-static under faults the static ASPs cannot
   see. *)

let () = Planp_runtime.Prims.install ()

module Engine = Netsim.Engine
module Node = Netsim.Node
module Topology = Netsim.Topology
module Faults = Netsim.Faults
module Registry = Obs.Registry
module Signal = Adapt.Signal
module Monitor = Adapt.Monitor
module Policy = Adapt.Policy
module Plane = Adapt.Plane

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let fevent ?until ?target ~at kind =
  { Faults.ft_at = at; ft_until = until; ft_kind = kind; ft_target = target }

(* ---------- signals ---------- *)

let signal_ewma () =
  let s = Signal.create ~alpha:0.5 "s" in
  checkf "zero before first sample" 0.0 (Signal.value s);
  Signal.push s 10.0;
  checkf "first sample seeds" 10.0 (Signal.value s);
  Signal.push s 20.0;
  checkf "ewma halves the step" 15.0 (Signal.value s);
  checkf "last is raw" 20.0 (Signal.last s);
  check "two samples" 2 (Signal.samples s);
  checkb "alpha 0 rejected" true
    (try
       ignore (Signal.create ~alpha:0.0 "bad");
       false
     with Invalid_argument _ -> true);
  checkb "alpha > 1 rejected" true
    (try
       ignore (Signal.create ~alpha:1.5 "bad");
       false
     with Invalid_argument _ -> true)

(* ---------- monitor ---------- *)

(* A counter bumped by scheduled events; the monitor must see exact
   per-tick rates (including the Engine.flush of batched metrics, covered
   end-to-end by the experiment tests below). *)
let monitor_ticks_and_rates () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let c = Registry.counter ~registry ~labels:[ ("t", "mon") ] "test.ticks" in
  (* +10 per second for the first 3 seconds. *)
  for i = 0 to 29 do
    Engine.schedule engine ~at:(0.1 *. float_of_int i) (fun () ->
        Registry.incr c)
  done;
  let mon = Monitor.create ~registry ~period:1.0 ~until:5.0 engine in
  let rate = Monitor.watch mon ~alpha:1.0 ~name:"rate" (Monitor.Counter_rate c) in
  let direct =
    Monitor.watch mon ~alpha:1.0 ~name:"direct"
      (Monitor.Sample (fun () -> 7.0))
  in
  checkb "duplicate name rejected" true
    (try
       ignore (Monitor.watch mon ~name:"rate" (Monitor.Sample (fun () -> 0.0)));
       false
     with Invalid_argument _ -> true);
  let seen = ref [] in
  Monitor.on_tick mon (fun ~now -> seen := now :: !seen);
  Monitor.start mon;
  Monitor.start mon;
  (* idempotent *)
  Engine.run engine;
  check "five ticks in [1;5]" 5 (Monitor.ticks mon);
  check "hook ran every tick" 5 (List.length !seen);
  (* Last second is idle, so the unsmoothed rate ends at 0; the raw
     samples walked through 10/s while the counter was climbing. *)
  checkf "rate settles to idle" 0.0 (Signal.value rate);
  checkf "plain sample" 7.0 (Signal.value direct);
  check "adapt.monitor.ticks counted" 5
    (Option.value ~default:0 (Registry.read_counter ~registry "adapt.monitor.ticks"));
  (* The signal gauge is registered and samples the smoothed value. *)
  checkf "adapt.signal.value gauge" 7.0
    (Option.value ~default:(-1.0)
       (Registry.read_gauge ~registry
          ~labels:[ ("signal", "direct") ]
          "adapt.signal.value"))

(* ---------- policy grammar ---------- *)

let policy_parse_roundtrip () =
  let text =
    "# comment\n\
     period 0.25\n\
     alpha 0.6\n\n\
     rule degrade: when drop_rate > 5 and goodput < 40 for 1.5 cooldown 8 \
     do swap audio-router conservative\n\
     rule shed: when loss_rate >= 50 for 2 do undeploy mpeg-filter\n\
     rule tune: when queue_delay > 0.25 for 1 do retune buffer 0.5\n\
     rule bail: when retry_rate > 20 for 5 do escalate \"retry storm\"\n\
     guard goodput window 4 min-ratio 0.5\n"
  in
  match Policy.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
      checkf "period" 0.25 p.Policy.period;
      checkf "alpha" 0.6 p.Policy.alpha;
      check "four rules" 4 (List.length p.Policy.rules);
      checkb "not empty" false (Policy.is_empty p);
      Alcotest.(check (list string))
        "signals referenced (sorted, deduped)"
        [ "drop_rate"; "goodput"; "loss_rate"; "queue_delay"; "retry_rate" ]
        (Policy.signals_referenced p);
      let degrade = List.hd p.Policy.rules in
      checkf "hold" 1.5 degrade.Policy.rl_hold;
      checkf "cooldown" 8.0 degrade.Policy.rl_cooldown;
      (match degrade.Policy.rl_pred with
      | Policy.All
          [
            Policy.Cmp { signal = s1; _ }; Policy.Cmp { signal = s2; _ };
          ] ->
          Alcotest.(check string) "conjunct 1" "drop_rate" s1;
          Alcotest.(check string) "conjunct 2" "goodput" s2
      | _ -> Alcotest.fail "expected a two-way conjunction");
      (match (List.nth p.Policy.rules 3).Policy.rl_action with
      | Policy.Escalate { reason } ->
          Alcotest.(check string) "quoted reason" "retry storm" reason
      | _ -> Alcotest.fail "expected escalate");
      match p.Policy.guard with
      | Some g ->
          Alcotest.(check string) "guard signal" "goodput" g.Policy.g_signal;
          checkf "guard window" 4.0 g.Policy.g_window;
          checkf "guard ratio" 0.5 g.Policy.g_min_ratio
      | None -> Alcotest.fail "expected a guard"

let policy_parse_errors () =
  let expect_line n text =
    match Policy.parse text with
    | Ok _ -> Alcotest.fail "parse should have failed"
    | Error msg ->
        let prefix = Printf.sprintf "line %d:" n in
        checkb
          (Printf.sprintf "error names line %d (got %S)" n msg)
          true
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix)
  in
  expect_line 1 "bogus directive\n";
  expect_line 2 "period 0.5\nrule x: if drop_rate > 1 for 1 do swap a b\n";
  expect_line 3 "period 0.5\n# fine\nrule x: when s !! 1 for 1 do swap a b\n";
  expect_line 1 "rule x: when s > nope for 1 do swap a b\n";
  expect_line 1 "guard g window 4\n";
  expect_line 1 "period zero\n";
  (* Malformed when/for/do shapes. *)
  expect_line 1 "rule x: when s > 1 do swap a b\n";
  expect_line 1 "rule x: when s > 1 for 1 cooldown 2\n";
  expect_line 1 "rule x: when s > 1 for 1 do swap a\n";
  (* Duplicate rule names: the second definition is the offence. *)
  expect_line 3
    "period 0.5\n\
     rule x: when s > 1 for 1 do swap a b\n\
     rule x: when s < 1 for 1 do swap a c\n";
  (* Out-of-range numbers: nan slips past a bare [< 0.0] test, and
     infinite holds/cooldowns/periods can never elapse. *)
  expect_line 1 "rule x: when s > 1 for nan do swap a b\n";
  expect_line 1 "rule x: when s > 1 for 1 cooldown nan do swap a b\n";
  expect_line 1 "rule x: when s > 1 for 1 cooldown inf do swap a b\n";
  expect_line 1 "rule x: when s > 1 for 1 cooldown -3 do swap a b\n";
  expect_line 2 "alpha 0.5\nperiod inf\n";
  expect_line 1 "guard g window inf min-ratio 0.5\n";
  expect_line 1 "guard g window 4 min-ratio nan\n"

let policy_empty () =
  checkb "empty is empty" true (Policy.is_empty Policy.empty);
  match Policy.parse "# nothing but comments\n\nperiod 1.0\n" with
  | Ok p -> checkb "no rules, no guard -> empty" true (Policy.is_empty p)
  | Error msg -> Alcotest.fail msg

(* ---------- the plane against a real daemon ---------- *)

(* A deployable no-op forwarder (passes the delivery verifier). *)
let forwarder note =
  Printf.sprintf
    {|-- test forwarder (%s)
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnRemote(network, p); (ps, ss))
|}
    note

(* Swap to a "bad" variant whose KPI regresses inside the guard window:
   the guard must roll back to the previous epoch, quarantine the
   variant, and the rule must never fire again (hysteresis while active,
   quarantine after the rollback). *)
let plane_guard_rollback_and_quarantine () =
  let topo = Topology.create () in
  let ctl_node = Topology.add_host topo "ctl" "10.9.0.1" in
  let target = Topology.add_host topo "target" "10.9.0.2" in
  ignore (Topology.connect topo ~latency:0.001 ctl_node target);
  Topology.compute_routes topo;
  let daemon = Deploy.Daemon.start target () in
  let ctl = Deploy.Controller.create ctl_node () in
  let acked = ref false in
  Deploy.Controller.deploy ctl ~target:(Node.addr target) ~name:"prog"
    ~source:(forwarder "good")
    ~on_done:(function
      | Deploy.Controller.Acked _ -> acked := true
      | outcome ->
          Alcotest.failf "initial deploy: %s"
            (Deploy.Controller.outcome_to_string outcome))
    ();
  (* Bounded: draining the queue would run to the deploy timeout event. *)
  Topology.run_until topo ~stop:1.0;
  checkb "initial deploy acked" true !acked;
  let kpi = ref 1.0 in
  let engine = Topology.engine topo in
  (* Healthy until 2 s; the rule's condition turns true at 2 s; the KPI
     collapses further at 3.5 s, inside the guard window of the swap the
     rule triggers. *)
  Engine.schedule engine ~at:2.0 (fun () -> kpi := 0.2);
  Engine.schedule engine ~at:3.5 (fun () -> kpi := 0.05);
  let policy =
    match
      Policy.parse
        "period 0.25\n\
         alpha 1\n\
         rule bad: when kpi < 0.5 for 0.25 cooldown 1 do swap prog bad\n\
         guard kpi window 2 min-ratio 0.9\n"
    with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let env =
    {
      Plane.de_controller = ctl;
      de_backend = "jit";
      de_targets_of =
        (fun program ->
          if program = "prog" then [ Node.addr target ] else []);
      de_variant_of =
        (fun ~program ~variant ->
          if program = "prog" && variant = "bad" then
            Some { Plane.v_source = forwarder "bad"; v_authenticated = false }
          else None);
      de_concurrency = 2;
      de_nak_policy = Deploy.Controller.Abort;
      de_nak_quarantine = 3;
    }
  in
  let plane =
    Plane.arm ~env
      ~active:[ ("prog", "good") ]
      ~engine ~until:10.0
      ~signals:[ ("kpi", Monitor.Sample (fun () -> !kpi)) ]
      policy
  in
  Topology.run topo;
  let stats = Plane.stats plane in
  check "rule fired exactly once" 1 stats.Plane.st_fired;
  check "one acknowledged swap" 1 stats.Plane.st_swaps;
  check "one guard check" 1 stats.Plane.st_guard_checks;
  check "one rollback" 1 stats.Plane.st_rollbacks;
  Alcotest.(check (option string))
    "active variant restored" (Some "good")
    (Plane.active_variant plane "prog");
  (* The daemon really runs the rolled-back epoch: the active program is
     the original source, not the bad variant. *)
  (match Deploy.Daemon.active_program daemon ~name:"prog" with
  | Some _ -> ()
  | None -> Alcotest.fail "no active program after rollback");
  checkb "events recorded the story" true (List.length stats.Plane.st_events >= 2);
  check "metric: adapt.rollbacks" 1
    (Option.value ~default:0 (Registry.read_counter "adapt.rollbacks"));
  check "metric: adapt.rules.fired{rule=bad}" 1
    (Option.value ~default:0
       (Registry.read_counter ~labels:[ ("rule", "bad") ] "adapt.rules.fired"))

(* A swap that holds: the rule keeps its condition true forever, but once
   the variant is live, re-firing is suppressed without consuming the
   cooldown. *)
let plane_hysteresis_suppresses_refire () =
  let topo = Topology.create () in
  let ctl_node = Topology.add_host topo "ctl" "10.9.1.1" in
  let target = Topology.add_host topo "target" "10.9.1.2" in
  ignore (Topology.connect topo ~latency:0.001 ctl_node target);
  Topology.compute_routes topo;
  ignore (Deploy.Daemon.start target ());
  let ctl = Deploy.Controller.create ctl_node () in
  Deploy.Controller.deploy ctl ~target:(Node.addr target) ~name:"prog"
    ~source:(forwarder "v1")
    ~on_done:(fun _ -> ())
    ();
  Topology.run_until topo ~stop:1.0;
  let policy =
    match
      Policy.parse
        "period 0.25\n\
         alpha 1\n\
         rule go: when x > 0 for 0 cooldown 0.5 do swap prog v2\n"
    with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let env =
    {
      Plane.de_controller = ctl;
      de_backend = "jit";
      de_targets_of = (fun _ -> [ Node.addr target ]);
      de_variant_of =
        (fun ~program:_ ~variant ->
          if variant = "v2" then
            Some { Plane.v_source = forwarder "v2"; v_authenticated = false }
          else None);
      de_concurrency = 2;
      de_nak_policy = Deploy.Controller.Abort;
      de_nak_quarantine = 3;
    }
  in
  let plane =
    Plane.arm ~env
      ~active:[ ("prog", "v1") ]
      ~engine:(Topology.engine topo) ~until:8.0
      ~signals:[ ("x", Monitor.Sample (fun () -> 1.0)) ]
      policy
  in
  Topology.run topo;
  let stats = Plane.stats plane in
  check "single firing despite ~32 eligible ticks" 1 stats.Plane.st_fired;
  check "single swap" 1 stats.Plane.st_swaps;
  Alcotest.(check (option string))
    "v2 live" (Some "v2")
    (Plane.active_variant plane "prog")

let plane_requires_wired_signals () =
  let engine = Engine.create () in
  let policy =
    match
      Policy.parse "rule r: when ghost > 1 for 1 do escalate boo\n"
    with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  checkb "unwired signal rejected" true
    (try
       ignore (Plane.arm ~engine ~until:1.0 ~signals:[] policy);
       false
     with Invalid_argument _ -> true)

let plane_retune_and_escalate () =
  let engine = Engine.create () in
  let tuned = ref [] and escalated = ref [] in
  let policy =
    match
      Policy.parse
        "period 0.5\n\
         rule tune: when x > 0 for 0 cooldown 10 do retune buffer 0.25\n\
         rule bail: when x > 0 for 1 cooldown 10 do escalate \"x stuck high\"\n"
    with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let plane =
    Plane.arm ~engine ~until:4.0
      ~on_retune:(fun ~param ~value -> tuned := (param, value) :: !tuned)
      ~on_escalate:(fun ~reason -> escalated := reason :: !escalated)
      ~signals:[ ("x", Monitor.Sample (fun () -> 1.0)) ]
      policy
  in
  Engine.run engine;
  let stats = Plane.stats plane in
  Alcotest.(check (list (pair string (float 1e-9))))
    "retune delivered once" [ ("buffer", 0.25) ] !tuned;
  Alcotest.(check (list string))
    "escalation delivered once" [ "x stuck high" ] !escalated;
  check "retunes counted" 1 stats.Plane.st_retunes;
  check "escalations counted" 1 stats.Plane.st_escalations

(* ---------- empty-policy golden parity ---------- *)

(* An armed-but-empty adaptation policy must leave the audio experiment
   bit-identical to no adaptation plane at all (the Faults precedent):
   idle monitors are not "cheap", they do not exist. *)
let empty_policy_golden_parity () =
  let run adaptation =
    Registry.reset Registry.default;
    Asp.Audio_experiment.run
      (Asp.Audio_experiment.quick_config ~deploy:Asp.Deploy_mode.In_band ?adaptation ())
  in
  let base = run None in
  let armed = run (Some Policy.empty) in
  check "frames sent" base.Asp.Audio_experiment.frames_sent
    armed.Asp.Audio_experiment.frames_sent;
  check "frames received" base.Asp.Audio_experiment.frames_received
    armed.Asp.Audio_experiment.frames_received;
  check "segment drops" base.Asp.Audio_experiment.segment_drops
    armed.Asp.Audio_experiment.segment_drops;
  check "silent frames" base.Asp.Audio_experiment.silent_frames
    armed.Asp.Audio_experiment.silent_frames;
  checkb "wire series identical" true
    (base.Asp.Audio_experiment.series = armed.Asp.Audio_experiment.series);
  checkb "wire quality counts identical" true
    (base.Asp.Audio_experiment.wire_quality_counts
    = armed.Asp.Audio_experiment.wire_quality_counts);
  match armed.Asp.Audio_experiment.adaptation with
  | None -> Alcotest.fail "armed run should report adaptation stats"
  | Some stats ->
      check "zero ticks: nothing was scheduled" 0 stats.Plane.st_ticks;
      check "zero firings" 0 stats.Plane.st_fired

(* ---------- adaptive vs static under faults ---------- *)

(* A congestion fault shrinks the client segment to 1/10th capacity: the
   static router ASP reads offered load (blind to capacity) and never
   degrades; the closed loop sees the drop rate and swaps the
   conservative thresholds in, then swaps back after the fault clears. *)
let audio_adaptive_beats_static () =
  let congest =
    {
      Faults.seed = 7;
      events =
        [
          fevent ~at:8.0 ~until:30.0
            ~target:(Faults.Tsegment "client-segment")
            (Faults.Congest { bandwidth_factor = 0.1; queue_factor = 1.0 });
        ];
    }
  in
  let config adaptation =
    {
      (Asp.Audio_experiment.quick_config ~deploy:Asp.Deploy_mode.In_band
         ~faults:congest ?adaptation ())
      with
      Asp.Audio_experiment.schedule = [ (0.0, 0.0) ];
    }
  in
  Registry.reset Registry.default;
  let static = Asp.Audio_experiment.run (config None) in
  Registry.reset Registry.default;
  let adaptive =
    Asp.Audio_experiment.run (config (Some (Asp.Audio_experiment.adaptive_policy ())))
  in
  (match adaptive.Asp.Audio_experiment.adaptation with
  | None -> Alcotest.fail "no adaptation stats"
  | Some stats ->
      checkb "at least one swap"
        true (stats.Plane.st_swaps >= 1);
      check "no failed swaps" 0 stats.Plane.st_failed_swaps;
      check "no rollbacks" 0 stats.Plane.st_rollbacks);
  checkb
    (Printf.sprintf "adaptive delivers more frames (%d vs %d static)"
       adaptive.Asp.Audio_experiment.frames_received
       static.Asp.Audio_experiment.frames_received)
    true
    (adaptive.Asp.Audio_experiment.frames_received
    > static.Asp.Audio_experiment.frames_received);
  checkb
    (Printf.sprintf "adaptive drops less (%d vs %d static)"
       adaptive.Asp.Audio_experiment.segment_drops
       static.Asp.Audio_experiment.segment_drops)
    true
    (adaptive.Asp.Audio_experiment.segment_drops
    < static.Asp.Audio_experiment.segment_drops)

(* Severe congestion on the MPEG client segment: the closed loop swaps
   the router filter to the authenticated B-frame-shedding variant, and
   more I- and P-frames survive than under the static pass-through. *)
let mpeg_adaptive_protects_ip_frames () =
  let congest =
    {
      Faults.seed = 11;
      events =
        [
          fevent ~at:2.0 ~until:16.0
            ~target:(Faults.Tsegment "client-segment")
            (Faults.Congest { bandwidth_factor = 0.03; queue_factor = 1.0 });
        ];
    }
  in
  let ip_frames result =
    List.fold_left
      (fun acc (i, p, _) -> acc + i + p)
      0 result.Asp.Mpeg_experiment.client_frame_kinds
  in
  Registry.reset Registry.default;
  let static =
    Asp.Mpeg_experiment.run
      (Asp.Mpeg_experiment.default_config ~deploy:Asp.Deploy_mode.In_band
         ~faults:congest ())
  in
  Registry.reset Registry.default;
  let adaptive =
    Asp.Mpeg_experiment.run
      (Asp.Mpeg_experiment.default_config ~deploy:Asp.Deploy_mode.In_band
         ~faults:congest
         ~adaptation:(Asp.Mpeg_experiment.adaptive_policy ())
         ())
  in
  (match adaptive.Asp.Mpeg_experiment.adaptation with
  | None -> Alcotest.fail "no adaptation stats"
  | Some stats ->
      checkb "at least one swap" true (stats.Plane.st_swaps >= 1);
      check "no failed swaps" 0 stats.Plane.st_failed_swaps);
  checkb
    (Printf.sprintf "adaptive delivers more I+P frames (%d vs %d static)"
       (ip_frames adaptive) (ip_frames static))
    true
    (ip_frames adaptive > ip_frames static)

(* server1 crashes mid-run: the Modulo gateway keeps assigning new
   connections to it (each costing the client a 2 s retry); the closed
   loop sees the retry rate, swaps the failover gateway in and starts its
   health prober, which routes everything to the survivor. *)
let http_adaptive_routes_around_crash () =
  let crash =
    {
      Faults.seed = 3;
      events =
        [
          fevent ~at:4.0 ~target:(Faults.Tnode "server1")
            (Faults.Crash { wipe = false });
        ];
    }
  in
  let config adaptation =
    {
      Asp.Http_experiment.default_config with
      Asp.Http_experiment.duration = 14.0;
      warmup = 2.0;
      client_count = 4;
      trace_requests = 20_000;
      deploy = Asp.Deploy_mode.In_band;
      faults = Some crash;
      adaptation;
    }
  in
  let setup = Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit in
  Registry.reset Registry.default;
  let static = Asp.Http_experiment.run_point (config None) setup ~workers:8 in
  Registry.reset Registry.default;
  let adaptive =
    Asp.Http_experiment.run_point
      (config (Some (Asp.Http_experiment.adaptive_policy ())))
      setup ~workers:8
  in
  (match adaptive.Asp.Http_experiment.adaptation with
  | None -> Alcotest.fail "no adaptation stats"
  | Some stats ->
      checkb "at least one swap" true (stats.Plane.st_swaps >= 1);
      check "no failed swaps" 0 stats.Plane.st_failed_swaps);
  checkb
    (Printf.sprintf "adaptive completes more replies (%.1f vs %.1f static)"
       adaptive.Asp.Http_experiment.replies_per_s static.Asp.Http_experiment.replies_per_s)
    true
    (adaptive.Asp.Http_experiment.replies_per_s
    > static.Asp.Http_experiment.replies_per_s);
  checkb
    (Printf.sprintf "adaptive retries less (%d vs %d static)"
       adaptive.Asp.Http_experiment.client_retries
       static.Asp.Http_experiment.client_retries)
    true
    (adaptive.Asp.Http_experiment.client_retries
    <= static.Asp.Http_experiment.client_retries)

let () =
  Alcotest.run "adapt"
    [
      ( "signal",
        [ Alcotest.test_case "ewma smoothing and bounds" `Quick signal_ewma ] );
      ( "monitor",
        [
          Alcotest.test_case "ticks, rates, gauges" `Quick
            monitor_ticks_and_rates;
        ] );
      ( "policy",
        [
          Alcotest.test_case "grammar round-trip" `Quick policy_parse_roundtrip;
          Alcotest.test_case "errors name the line" `Quick policy_parse_errors;
          Alcotest.test_case "emptiness" `Quick policy_empty;
        ] );
      ( "plane",
        [
          Alcotest.test_case "guard rolls back and quarantines" `Quick
            plane_guard_rollback_and_quarantine;
          Alcotest.test_case "hysteresis suppresses refire" `Quick
            plane_hysteresis_suppresses_refire;
          Alcotest.test_case "unwired signals rejected" `Quick
            plane_requires_wired_signals;
          Alcotest.test_case "retune and escalate callbacks" `Quick
            plane_retune_and_escalate;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "empty policy golden parity" `Quick
            empty_policy_golden_parity;
          Alcotest.test_case "audio: adaptive beats static" `Slow
            audio_adaptive_beats_static;
          Alcotest.test_case "mpeg: B-shedding protects I+P" `Slow
            mpeg_adaptive_protects_ip_frames;
          Alcotest.test_case "http: failover swap under crash" `Slow
            http_adaptive_routes_around_crash;
        ] );
    ]
