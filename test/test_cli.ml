(* End-to-end tests of the planpc command-line tool (the binary itself,
   run as a subprocess — dune declares the dependency). *)

let planpc = "../bin/planpc.exe"
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* Run planpc with [args]; returns (exit code, combined output). *)
let run args =
  let out_file = Filename.temp_file "planpc" ".out" in
  let command =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote planpc)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out_file)
  in
  let code = Sys.command command in
  let ic = open_in_bin out_file in
  let output = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out_file;
  (code, output)

let write_program source =
  let path = Filename.temp_file "prog" ".planp" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  path

let forwarder =
  "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
   (OnRemote(network, p); (ps, ss))"

let flood =
  "channel flood(ps : unit, ss : unit, p : ip*blob) is\n\
   (OnNeighbor(flood, p); (ps, ss))"

let cli_check_ok () =
  let path = write_program forwarder in
  let code, output = run [ "check"; path ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "reports OK" true (contains output "OK");
  checkb "reports channels" true (contains output "1 channel(s)")

let cli_check_bad () =
  let path = write_program "val x : int = true" in
  let code, output = run [ "check"; path ] in
  Sys.remove path;
  checkb "nonzero exit" true (code <> 0);
  checkb "mentions the type error" true (contains output "expected int")

let cli_verify_pass_and_fail () =
  let good = write_program forwarder in
  let code, output = run [ "verify"; good ] in
  Sys.remove good;
  check "good exits 0" 0 code;
  checkb "all proved" true (contains output "PROVED");
  let bad = write_program flood in
  let code, output = run [ "verify"; bad ] in
  Sys.remove bad;
  check "rejected exits 2" 2 code;
  checkb "names the flooding loop" true (contains output "flooding")

let cli_ast_reparses () =
  let path = write_program forwarder in
  let code, output = run [ "ast"; path ] in
  Sys.remove path;
  check "exit 0" 0 code;
  (* the dump must itself be a valid program *)
  let reparsed = Planp.Parser.parse output in
  check "one decl" 1 (List.length reparsed)

let cli_bytecode () =
  let path = write_program forwarder in
  let code, output = run [ "bytecode"; path ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "has emit" true (contains output "emit_remote network");
  checkb "has return" true (contains output "return")

let cli_time () =
  let path = write_program forwarder in
  let code, output = run [ "time"; path ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "mentions jit" true (contains output "jit");
  checkb "mentions ms" true (contains output "ms")

let cli_prims () =
  let code, output = run [ "prims" ] in
  check "exit 0" 0 code;
  List.iter
    (fun prim -> checkb prim true (contains output prim))
    [ "ipDestSet"; "audioDegrade"; "imgDistill"; "tblGet"; "linkLoad" ]

let cli_simulate () =
  let path = write_program forwarder in
  let code, output = run [ "simulate"; path; "--packets"; "5" ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "tcp treated" true (contains output "packets treated by the program: 5");
  checkb "receiver got everything" true (contains output "tcp: 5   udp: 5")

let cli_simulate_backend () =
  let path = write_program forwarder in
  let code, output = run [ "simulate"; path; "--backend"; "interp"; "-n"; "3" ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "interp backend named" true (contains output "interp backend")

let cli_fold () =
  let path =
    write_program
      "val base : int = 40\nval answer : int = base + 2\n\
       channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
       (OnRemote(network, p); (ps + answer, ss))"
  in
  let code, output = run [ "fold"; path ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "constant inlined into the channel" true (contains output "ps + 42")

let cli_missing_file () =
  let code, _ = run [ "check"; "/nonexistent.planp" ] in
  checkb "nonzero exit" true (code <> 0)

let read_and_remove path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  contents

let cli_stats () =
  let path = write_program forwarder in
  let code, output = run [ "stats"; path; "-n"; "5" ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "engine events metric" true (contains output "netsim.engine.events");
  checkb "link metric" true (contains output "netsim.link.tx_packets");
  checkb "node metric with label" true
    (contains output "netsim.node.delivered{node=bob}");
  checkb "runtime metric" true (contains output "planp.runtime.handled")

let cli_run_metrics_deterministic () =
  let path = write_program forwarder in
  let m1 = Filename.temp_file "metrics" ".json" in
  let m2 = Filename.temp_file "metrics" ".json" in
  let code1, output = run [ "run"; path; "--metrics-out"; m1 ] in
  let code2, _ = run [ "run"; path; "--metrics-out"; m2 ] in
  Sys.remove path;
  check "first exit 0" 0 code1;
  check "second exit 0" 0 code2;
  checkb "mentions receiver" true (contains output "receiver (bob)");
  let j1 = read_and_remove m1 and j2 = read_and_remove m2 in
  checkb "two identical runs export byte-identical JSON" true (j1 = j2);
  checkb "format header" true (contains j1 "planp-metrics/1");
  List.iter
    (fun family ->
      checkb (family ^ " present") true (contains j1 family))
    [ "netsim.engine."; "netsim.link."; "netsim.segment."; "netsim.node.";
      "planp.runtime."; "planp.exec.packets" ]

let cli_run_timeline () =
  let path = write_program forwarder in
  let out = Filename.temp_file "timeline" ".json" in
  let code, _ = run [ "run"; path; "-n"; "3"; "--timeline-out"; out ] in
  Sys.remove path;
  check "exit 0" 0 code;
  let json = read_and_remove out in
  checkb "format header" true (contains json "planp-timeline/1");
  checkb "tracer events present" true (contains json "\"source\": \"tracer\"");
  checkb "metric snapshots present" true (contains json "\"source\": \"metrics\"")

let cli_deploy () =
  let path = write_program forwarder in
  let code, output = run [ "deploy"; path; "--targets"; "3"; "--flap" ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "every target acked" true (contains output "target2    ACK epoch 1");
  checkb "slots listed" true (contains output "asp@1");
  checkb "capsule metric" true
    (contains output "deploy.controller.capsules_sent{controller=ctrl}");
  checkb "flap forced retransmissions" true
    (not (contains output "retransmissions{controller=ctrl}               0"))

let cli_deploy_rejected () =
  (* The daemons verify on the receiving node: an unprovable program is
     NAKed with the verifier's reason, and the exit code says so. *)
  let path = write_program flood in
  let code, output = run [ "deploy"; path; "--targets"; "1" ] in
  check "exit 2" 2 code;
  checkb "NAK with reason" true (contains output "NAK epoch 1: rejected");
  checkb "slot left empty" true (contains output "(empty)");
  (* the privileged path still installs it *)
  let code, output =
    run [ "deploy"; path; "--targets"; "1"; "--authenticated" ]
  in
  Sys.remove path;
  check "authenticated exit 0" 0 code;
  checkb "authenticated acked" true (contains output "ACK epoch 1")

let cli_undeploy () =
  let path = write_program forwarder in
  let code, output = run [ "undeploy"; path; "--targets"; "2" ] in
  Sys.remove path;
  check "exit 0" 0 code;
  checkb "deployed first" true (contains output "ACK epoch 1 (activated)");
  checkb "then retired" true (contains output "ACK epoch 1 (undeployed)");
  checkb "rollback target retained" true
    (contains output "retired (epoch 1 kept for rollback)")

let cli_deploy_retry_budget_aborts () =
  (* With a finite retry budget the --flap cut (healed only at t=1s)
     exhausts the capsule streams: the rollout settles Aborted, the exit
     code is nonzero and the reason reaches stderr. *)
  let path = write_program forwarder in
  let code, output =
    run [ "deploy"; path; "--targets"; "2"; "--flap"; "--retry-budget"; "2" ]
  in
  Sys.remove path;
  check "exit 2" 2 code;
  checkb "outcome aborted" true
    (contains output "aborted: retry budget exhausted");
  checkb "failure reason on stderr" true
    (contains output "planpc: deploy failed on target0")

let write_tmp suffix contents =
  let path = Filename.temp_file "adapt" suffix in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let cli_adapt_empty_policy_parity () =
  (* The golden-parity satellite at the CLI level: adapt with an empty
     policy arms an inert plane on the exact [run] code path, so metrics
     and timeline exports come out byte-identical to [planpc run]. *)
  let path = write_program forwarder in
  let policy = write_tmp ".pol" "# no rules\n\n" in
  let m1 = Filename.temp_file "metrics" ".json" in
  let t1 = Filename.temp_file "timeline" ".json" in
  let m2 = Filename.temp_file "metrics" ".json" in
  let t2 = Filename.temp_file "timeline" ".json" in
  let code1, output =
    run
      [ "adapt"; path; "--policy"; policy; "--metrics-out"; m1;
        "--timeline-out"; t1 ]
  in
  let code2, _ =
    run [ "run"; path; "--metrics-out"; m2; "--timeline-out"; t2 ]
  in
  Sys.remove path;
  Sys.remove policy;
  check "adapt exit 0" 0 code1;
  check "run exit 0" 0 code2;
  checkb "reports the inert plane" true (contains output "(inert)");
  checkb "metrics byte-identical" true (read_and_remove m1 = read_and_remove m2);
  checkb "timeline byte-identical" true
    (read_and_remove t1 = read_and_remove t2)

let cli_adapt_closed_loop () =
  (* End to end from the command line: congestion squeezes the lan
     segment, the drop_rate rule fires, the plane hot-swaps the router's
     program to the --variant source as a fresh epoch, and the goodput
     guard confirms the swap. *)
  let path = write_program forwarder in
  let variant = write_tmp ".planp" forwarder in
  let policy =
    write_tmp ".pol"
      "period 0.5\n\
       alpha 0.4\n\
       rule shed: when drop_rate > 5 for 1 cooldown 8 do swap asp lite\n\
       guard goodput window 3 min-ratio 0.2\n"
  in
  let faults =
    write_tmp ".faults"
      "at 4.0 until 14.0 congest lan bandwidth 0.001 queue 0.002\n"
  in
  let code, output =
    run
      [ "adapt"; path; "--policy"; policy; "--variant"; "lite=" ^ variant;
        "--faults"; faults; "--duration"; "20"; "--packets"; "40" ]
  in
  Sys.remove path;
  Sys.remove variant;
  Sys.remove policy;
  Sys.remove faults;
  check "exit 0" 0 code;
  checkb "initial deploy acked" true (contains output "ACK epoch 1 (activated)");
  checkb "rule fired a swap" true (contains output "swap asp lite");
  checkb "swap acked as a fresh epoch" true (contains output "acked epoch 2");
  checkb "guard passed" true (contains output "pass: goodput");
  checkb "variant live" true
    (contains output "active variant of \"asp\": lite");
  checkb "router on the new epoch" true (contains output "asp@2")

(* The tentpole pin at the CLI level: a full closed loop — faults, a
   firing policy, a coordinated swap staged over a 3-router fleet — must
   export byte-identical metrics and timeline for any --domains count. *)
let cli_adapt_domains_parity () =
  let path = write_program forwarder in
  let variant = write_tmp ".planp" forwarder in
  let policy =
    write_tmp ".pol"
      "period 0.5\n\
       alpha 0.4\n\
       rule shed: when drop_rate > 5 for 1 cooldown 8 do swap asp lite\n\
       guard goodput window 3 min-ratio 0.2\n"
  in
  let faults =
    write_tmp ".faults"
      "at 4.0 until 14.0 congest lan bandwidth 0.001 queue 0.002\n"
  in
  (* The pin is the metrics export (counters, gauges, daemon state) and
     the decisions the output narrates — not the timeline, whose packet
     uids are global allocation-order artifacts that legitimately
     interleave differently across partition counts. *)
  let leg domains =
    let m = Filename.temp_file "metrics" ".json" in
    let code, output =
      run
        [ "adapt"; path; "--policy"; policy; "--variant"; "lite=" ^ variant;
          "--faults"; faults; "--duration"; "20"; "--packets"; "40";
          "--targets"; "3"; "--domains"; string_of_int domains;
          "--metrics-out"; m ]
    in
    check (Printf.sprintf "domains %d exit 0" domains) 0 code;
    (output, read_and_remove m)
  in
  let out1, m1 = leg 1 in
  checkb "fleet-wide initial deploy" true (contains out1 "to 3 routers");
  checkb "rule fired a swap" true (contains out1 "swap asp lite");
  List.iter
    (fun domains ->
      let out, m = leg domains in
      checkb
        (Printf.sprintf "domains %d reported" domains)
        true
        (contains out (Printf.sprintf "domains: %d" domains));
      checkb
        (Printf.sprintf "metrics byte-identical at %d domains" domains)
        true (m = m1))
    [ 2; 4 ];
  Sys.remove path;
  Sys.remove variant;
  Sys.remove policy;
  Sys.remove faults

(* --domains 2 must reproduce the sequential run byte-for-byte: same
   metrics JSON, same timeline. *)
let cli_run_domains_parity () =
  let path = write_program forwarder in
  let m1 = Filename.temp_file "metrics" ".json" in
  let t1 = Filename.temp_file "timeline" ".json" in
  let m2 = Filename.temp_file "metrics" ".json" in
  let t2 = Filename.temp_file "timeline" ".json" in
  let code1, _ =
    run
      [ "run"; path; "-n"; "25"; "--metrics-out"; m1; "--timeline-out"; t1 ]
  in
  let code2, output =
    run
      [ "run"; path; "-n"; "25"; "--domains"; "2"; "--metrics-out"; m2;
        "--timeline-out"; t2 ]
  in
  Sys.remove path;
  check "sequential exit 0" 0 code1;
  check "partitioned exit 0" 0 code2;
  checkb "reports the shard" true (contains output "domains: 2");
  let j1 = read_and_remove m1 and j2 = read_and_remove m2 in
  checkb "metrics byte-identical across domains" true (j1 = j2);
  let l1 = read_and_remove t1 and l2 = read_and_remove t2 in
  checkb "timeline byte-identical across domains" true (l1 = l2)

let cli_run_domains_invalid () =
  let path = write_program forwarder in
  let code, output = run [ "run"; path; "--domains"; "0" ] in
  checkb "nonzero exit" true (code <> 0);
  checkb "names the bound" true (contains output "--domains must be >= 1");
  let code2, output2 = run [ "run"; path; "--domains"; "64" ] in
  Sys.remove path;
  checkb "oversplit rejected" true (code2 <> 0);
  checkb "says how far the topology splits" true
    (contains output2 "splits into")

let cli_adapt_bad_policy () =
  let path = write_program forwarder in
  let policy = write_tmp ".pol" "period 0.5\nrule oops: when x ?? 3 do swap a b\n" in
  let code, output = run [ "adapt"; path; "--policy"; policy ] in
  Sys.remove path;
  Sys.remove policy;
  checkb "nonzero exit" true (code <> 0);
  checkb "names the line" true (contains output "line 2")

let cli_adapt_unwired_signal () =
  let path = write_program forwarder in
  let policy =
    write_tmp ".pol" "rule r: when queue_delay > 1 for 1 do escalate \"x\"\n"
  in
  let code, output = run [ "adapt"; path; "--policy"; policy ] in
  Sys.remove path;
  Sys.remove policy;
  checkb "nonzero exit" true (code <> 0);
  checkb "says the signal is not wired" true (contains output "not wired")

let () =
  Alcotest.run "planpc-cli"
    [
      ( "planpc",
        [
          Alcotest.test_case "check ok" `Quick cli_check_ok;
          Alcotest.test_case "check bad" `Quick cli_check_bad;
          Alcotest.test_case "verify pass and fail" `Quick cli_verify_pass_and_fail;
          Alcotest.test_case "ast reparses" `Quick cli_ast_reparses;
          Alcotest.test_case "bytecode" `Quick cli_bytecode;
          Alcotest.test_case "time" `Quick cli_time;
          Alcotest.test_case "prims" `Quick cli_prims;
          Alcotest.test_case "simulate" `Quick cli_simulate;
          Alcotest.test_case "simulate backend" `Quick cli_simulate_backend;
          Alcotest.test_case "fold" `Quick cli_fold;
          Alcotest.test_case "missing file" `Quick cli_missing_file;
          Alcotest.test_case "stats" `Quick cli_stats;
          Alcotest.test_case "run metrics deterministic" `Quick
            cli_run_metrics_deterministic;
          Alcotest.test_case "run timeline" `Quick cli_run_timeline;
          Alcotest.test_case "deploy" `Quick cli_deploy;
          Alcotest.test_case "deploy rejected" `Quick cli_deploy_rejected;
          Alcotest.test_case "undeploy" `Quick cli_undeploy;
          Alcotest.test_case "deploy retry budget aborts" `Quick
            cli_deploy_retry_budget_aborts;
          Alcotest.test_case "adapt empty policy parity" `Quick
            cli_adapt_empty_policy_parity;
          Alcotest.test_case "adapt closed loop" `Quick cli_adapt_closed_loop;
          Alcotest.test_case "adapt domains parity" `Quick
            cli_adapt_domains_parity;
          Alcotest.test_case "run --domains parity" `Quick
            cli_run_domains_parity;
          Alcotest.test_case "run --domains invalid" `Quick
            cli_run_domains_invalid;
          Alcotest.test_case "adapt bad policy" `Quick cli_adapt_bad_policy;
          Alcotest.test_case "adapt unwired signal" `Quick
            cli_adapt_unwired_signal;
        ] );
    ]
