#!/bin/sh
# Performance-regression gate: re-measure the packet fast path in smoke
# mode and compare against the committed baseline BENCH_PERF.json.
#
# Only machine-independent quantities are gated:
#   - minor words allocated per packet (tolerance +25% plus a small
#     absolute slack), and
#   - the same-run jit-vs-interp throughput ratio on the audio ASP (>= 2x).
# Absolute packets/sec are recorded in the baseline for reference but
# never compared across machines.
#
# Run from the repository root: sh tools/bench_check.sh

set -eu

cd "$(dirname "$0")/.."

if [ ! -f BENCH_PERF.json ]; then
    echo "bench_check: BENCH_PERF.json baseline missing" >&2
    exit 1
fi

exec dune exec bench/main.exe -- perf --smoke --check BENCH_PERF.json
