#!/bin/sh
# Performance-regression gate: re-measure the packet fast path and the
# event-core scale workloads in smoke mode and compare against the
# committed baseline BENCH_PERF.json.
#
# Only machine-independent quantities are gated:
#   - minor words allocated per packet (tolerance +25% plus a small
#     absolute slack),
#   - minor words allocated per simulation event in the scale workloads
#     (tolerance +25% plus two words; the link workloads sit at ~0, so
#     this is effectively "the event core stays allocation-free"), and
#   - the same-run jit-vs-interp throughput ratio on the audio ASP (>= 2x),
#   - the same-run flow-cache ratio on the steady MPEG B-frame stream
#     (cached >= 1.5x uncached, hit rate >= 0.9) and that the
#     uncacheable http gateway reports a zero hit rate,
#   - the same-run par4-vs-sequential events/s ratio on the 1000-flow
#     mesh (>= 2x; skipped with a message on hosts with fewer than 4
#     cores, where four domains cannot beat one engine),
#   - the fault-matrix cell counts (frames/replies/streams under the
#     baseline/lossy/flappy/churn scenarios; the simulation and the fault
#     plane are both seeded, so the counts are deterministic and gated
#     +-25% in both directions) plus the adaptation-shape assertions, and
#   - the closed-loop adaptation cells (adaptive vs static goodput under
#     the same four scenario names; adaptive must beat static in every
#     fault cell and tie exactly, with zero swaps, on the healthy one),
#     and
#   - the multi-node fleet-churn cell (a 2-gateway fleet under the
#     server crash: the coordinated plane's goodput must strictly beat
#     both the static fleet and one independent plane per gateway —
#     the per-node planes watch only their own clients' retry slice, so
#     partial failover is the best they manage).
# Absolute packets/sec and events/sec are recorded in the baseline for
# reference but never compared across machines.
#
# The release profile matters: the dev profile passes -opaque, which
# disables the cross-module inlining the allocation-free fast path
# depends on (and the committed baseline was measured with).
#
# Run from the repository root: sh tools/bench_check.sh

set -eu

cd "$(dirname "$0")/.."

if [ ! -f BENCH_PERF.json ]; then
    echo "bench_check: BENCH_PERF.json baseline missing" >&2
    exit 1
fi

# This script measures in --smoke mode, so the committed baseline must
# have been written in --smoke mode too; a full-mode baseline gates
# nothing real (the binary double-checks, but fail early and clearly).
if ! grep -q '"smoke": true' BENCH_PERF.json; then
    echo "bench_check: BENCH_PERF.json was not written with --smoke;" >&2
    echo "regenerate: dune exec --profile release bench/main.exe -- perf cache scale faults adapt par --smoke --perf-out BENCH_PERF.json" >&2
    exit 1
fi

exec dune exec --profile release bench/main.exe -- perf cache scale faults adapt par --smoke --check BENCH_PERF.json
