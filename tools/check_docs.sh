#!/bin/sh
# Documentation checks:
#   1. every lib/* subtree is listed in README.md's architecture map;
#   2. the odoc docs build cleanly (skipped when odoc is not installed,
#      as in the minimal CI image).
# Run from the repository root: sh tools/check_docs.sh

set -eu

cd "$(dirname "$0")/.."

status=0

for dir in lib/*/; do
    name="lib/${dir#lib/}"
    name="${name%/}"
    if ! grep -q "\`$name\`" README.md; then
        echo "check_docs: $name is missing from README.md's architecture map" >&2
        status=1
    fi
done

if command -v odoc >/dev/null 2>&1; then
    if ! dune build @doc; then
        echo "check_docs: dune build @doc failed" >&2
        status=1
    fi
else
    echo "check_docs: odoc not installed, skipping dune build @doc"
fi

if [ "$status" -eq 0 ]; then
    echo "check_docs: OK"
fi
exit "$status"
