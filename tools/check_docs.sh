#!/bin/sh
# Documentation checks:
#   1. every lib/* subtree is listed in README.md's architecture map;
#   2. every netsim.faults.* metric named in the docs is actually
#      registered by lib/netsim/faults.ml (docs cannot invent metrics);
#   3. every adapt.* metric named in the docs is registered by
#      lib/adapt/*.ml (same contract for the adaptation plane);
#   4. every netsim.par.* metric named in the docs is registered by
#      lib/netsim/par_engine.ml (same contract for the parallel driver);
#   5. every runtime.cache.* metric named in the docs is registered by
#      lib/planp_runtime/flowcache.ml (same contract for the flow cache);
#   6. the odoc docs build cleanly (skipped when odoc is not installed,
#      as in the minimal CI image).
# Run from the repository root: sh tools/check_docs.sh

set -eu

cd "$(dirname "$0")/.."

status=0

for dir in lib/*/; do
    name="lib/${dir#lib/}"
    name="${name%/}"
    if ! grep -q "\`$name\`" README.md; then
        echo "check_docs: $name is missing from README.md's architecture map" >&2
        status=1
    fi
done

# Every faults metric the docs mention must exist in the registry code.
# Abbreviated spellings like `.corrupted_packets` (sharing the family
# prefix of the name before them) are expanded by taking the suffix.
for metric in $(grep -ho 'netsim\.faults\.[a-z_]*' doc/*.md README.md | sort -u); do
    suffix="${metric#netsim.faults.}"
    if ! grep -q "\"netsim\.faults\.$suffix\"" lib/netsim/faults.ml; then
        echo "check_docs: docs name $metric but lib/netsim/faults.ml does not register it" >&2
        status=1
    fi
done
for metric in $(grep -h 'netsim\.faults\.' doc/*.md README.md \
                | grep -o '`\.[a-z_]*`' | tr -d '`.' | sort -u); do
    if ! grep -q "\"netsim\.faults\.$metric\"" lib/netsim/faults.ml; then
        echo "check_docs: docs name a faults metric .$metric that lib/netsim/faults.ml does not register" >&2
        status=1
    fi
done

# Same contract for the adaptation plane. The docs use full metric
# names only (adapt.monitor.ticks, never `.ticks`), so no
# abbreviation expansion is needed; file mentions like test_adapt.ml
# are filtered out.
for metric in $(grep -ho 'adapt\.[a-z_.]*[a-z_]' doc/*.md README.md \
                | grep -v '\.ml$' | sort -u); do
    if ! grep -qF "\"$metric\"" lib/adapt/*.ml; then
        echo "check_docs: docs name $metric but lib/adapt/*.ml does not register it" >&2
        status=1
    fi
done

# Same contract for the partitioned driver's execution-plane counters,
# with the same abbreviation expansion as the faults family.
for metric in $(grep -ho 'netsim\.par\.[a-z_][a-z_]*' doc/*.md README.md | sort -u); do
    suffix="${metric#netsim.par.}"
    if ! grep -q "\"netsim\.par\.$suffix\"" lib/netsim/par_engine.ml; then
        echo "check_docs: docs name $metric but lib/netsim/par_engine.ml does not register it" >&2
        status=1
    fi
done
for metric in $(grep -h 'netsim\.par\.' doc/*.md README.md \
                | grep -o '`\.[a-z_]*`' | tr -d '`.' | sort -u); do
    if ! grep -q "\"netsim\.par\.$metric\"" lib/netsim/par_engine.ml; then
        echo "check_docs: docs name a par metric .$metric that lib/netsim/par_engine.ml does not register" >&2
        status=1
    fi
done

# Same contract for the flow-keyed decision cache's counters, with the
# same abbreviation expansion as the faults family.
for metric in $(grep -ho 'runtime\.cache\.[a-z_][a-z_]*' doc/*.md README.md | sort -u); do
    suffix="${metric#runtime.cache.}"
    if ! grep -q "\"runtime\.cache\.$suffix\"" lib/planp_runtime/flowcache.ml; then
        echo "check_docs: docs name $metric but lib/planp_runtime/flowcache.ml does not register it" >&2
        status=1
    fi
done
for metric in $(grep -h 'runtime\.cache\.' doc/*.md README.md \
                | grep -o '`\.[a-z_]*`' | tr -d '`.' | sort -u); do
    if ! grep -q "\"runtime\.cache\.$metric\"" lib/planp_runtime/flowcache.ml; then
        echo "check_docs: docs name a cache metric .$metric that lib/planp_runtime/flowcache.ml does not register" >&2
        status=1
    fi
done

if command -v odoc >/dev/null 2>&1; then
    if ! dune build @doc; then
        echo "check_docs: dune build @doc failed" >&2
        status=1
    fi
else
    echo "check_docs: odoc not installed, skipping dune build @doc"
fi

if [ "$status" -eq 0 ]; then
    echo "check_docs: OK"
fi
exit "$status"
